"""Simulated UCR/UEA multivariate classification datasets (Table 2).

The real UEA archive cannot be downloaded in an offline environment, so this
module generates, for each of the 23 dataset names used in Table 2 of the
paper, a synthetic multivariate classification problem whose metadata
(number of classes, number of dimensions, series length) follows the paper's
Table 2, optionally scaled down so CPU training stays tractable.

Each simulated dataset mixes two kinds of class-discriminative structure so
that the comparative pressures of the paper are preserved:

* *per-dimension* localized patterns (detectable by any CNN and by the
  c-architectures), and
* *cross-dimension* patterns — class-dependent temporal alignment between two
  dimensions — which require comparing dimensions (the advantage of the plain
  and d-architectures over the c-architectures).

A per-dataset difficulty parameter (noise level) is derived deterministically
from the dataset name so that accuracies spread over a range rather than
saturating at 1.0 for every dataset.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .datasets import MultivariateDataset


def _stable_seed(name: str, random_state: Optional[int]) -> int:
    """Process-stable 32-bit seed for a (dataset name, random_state) pair.

    Python's built-in ``hash`` of strings is randomized per interpreter
    (PYTHONHASHSEED), which would make the simulated datasets differ between
    the parent and spawned worker processes of the parallel experiment
    runner, and across CLI invocations sharing a result cache.
    """
    return zlib.crc32(f"{name}:{random_state}".encode("utf-8"))

#: Metadata of the 23 UEA datasets used in Table 2: (classes, length, dimensions).
UEA_METADATA: Dict[str, Tuple[int, int, int]] = {
    "AtrialFibrillation": (3, 640, 2),
    "Libras": (15, 45, 2),
    "BasicMotions": (4, 100, 6),
    "RacketSports": (4, 30, 6),
    "Epilepsy": (4, 206, 3),
    "StandWalkJump": (3, 2500, 4),
    "UWaveGestureLibrary": (8, 315, 3),
    "Handwriting": (26, 152, 3),
    "NATOPS": (6, 51, 24),
    "PenDigits": (10, 8, 2),
    "FingerMovements": (2, 50, 28),
    "ArticularyWordRecognition": (25, 144, 9),
    "HandMovementDirection": (4, 400, 10),
    "Cricket": (12, 1197, 6),
    "LSST": (14, 36, 6),
    "EthanolConcentration": (4, 1751, 3),
    "SelfRegulationSCP1": (2, 896, 6),
    "SelfRegulationSCP2": (2, 1152, 7),
    "Heartbeat": (2, 405, 61),
    "PhonemeSpectra": (39, 217, 39),
    "EigenWorms": (5, 17984, 6),
    "MotorImagery": (2, 3000, 64),
    "FaceDetection": (2, 62, 144),
}

#: Dataset names in the order they appear in Table 2 of the paper.
UEA_DATASET_NAMES: List[str] = list(UEA_METADATA)


@dataclass
class UEASimulationConfig:
    """Controls the scale of the simulated archive.

    ``max_length``, ``max_dimensions`` and ``max_classes`` cap the metadata so
    CPU-only training remains feasible; ``instances_per_class`` controls the
    dataset size.  Setting the caps to ``None`` reproduces the paper's
    metadata exactly (not recommended without a GPU).
    """

    instances_per_class: int = 10
    max_length: Optional[int] = 96
    max_dimensions: Optional[int] = 12
    max_classes: Optional[int] = 6
    noise_scale: float = 1.0
    random_state: Optional[int] = None


def scaled_metadata(name: str, config: UEASimulationConfig) -> Tuple[int, int, int]:
    """Return (classes, length, dimensions) for ``name`` after applying caps."""
    if name not in UEA_METADATA:
        raise KeyError(f"unknown UEA dataset {name!r}")
    n_classes, length, n_dims = UEA_METADATA[name]
    if config.max_classes is not None:
        n_classes = min(n_classes, config.max_classes)
    if config.max_length is not None:
        length = min(length, config.max_length)
    if config.max_dimensions is not None:
        n_dims = min(n_dims, config.max_dimensions)
    length = max(length, 16)
    n_dims = max(n_dims, 2)
    n_classes = max(n_classes, 2)
    return n_classes, length, n_dims


def _difficulty(name: str) -> float:
    """Deterministic per-dataset noise factor in [0.5, 2.5] derived from the name."""
    digest = sum(ord(c) * (i + 1) for i, c in enumerate(name))
    return 0.5 + 2.0 * ((digest % 101) / 100.0)


def _class_pattern(rng: np.random.Generator, length: int) -> np.ndarray:
    """A smooth localized pattern used as a class signature."""
    t = np.linspace(0, 1, length)
    freq = rng.uniform(1.0, 4.0)
    phase = rng.uniform(0, 2 * np.pi)
    width = rng.uniform(0.08, 0.2)
    center = rng.uniform(0.2, 0.8)
    return np.sin(2 * np.pi * freq * t + phase) * np.exp(-((t - center) ** 2) / (2 * width ** 2))


def make_uea_dataset(name: str, config: Optional[UEASimulationConfig] = None) -> MultivariateDataset:
    """Simulate one UEA dataset.

    The returned dataset has class-specific localized patterns planted in a
    class-specific subset of dimensions, plus a class-dependent temporal lag
    between two designated dimensions (the cross-dimension feature).
    """
    config = config or UEASimulationConfig()
    n_classes, length, n_dims = scaled_metadata(name, config)
    rng = np.random.default_rng(_stable_seed(name, config.random_state))

    noise = 0.3 * config.noise_scale * _difficulty(name)
    pattern_length = max(8, length // 4)

    # Per-class signatures: which dimensions carry the localized pattern, the
    # pattern itself, and the lag between the two "coupled" dimensions.
    class_dims = [rng.choice(n_dims, size=max(1, n_dims // 3), replace=False)
                  for _ in range(n_classes)]
    class_patterns = [_class_pattern(rng, pattern_length) for _ in range(n_classes)]
    coupled_dims = rng.choice(n_dims, size=2, replace=False)
    class_lags = rng.integers(0, max(1, length // 8), size=n_classes)

    instances, labels = [], []
    t = np.arange(length)
    for class_id in range(n_classes):
        for _ in range(config.instances_per_class):
            series = rng.normal(0.0, noise, size=(n_dims, length))
            # Shared smooth background so dimensions are correlated.
            background = np.sin(2 * np.pi * t / length * rng.uniform(1, 3)
                                + rng.uniform(0, 2 * np.pi))
            series += 0.5 * background
            # Localized class pattern in the class's dimensions.
            start = rng.integers(0, length - pattern_length + 1)
            for dim in class_dims[class_id]:
                amplitude = rng.uniform(0.8, 1.2)
                series[dim, start: start + pattern_length] += amplitude * class_patterns[class_id]
            # Cross-dimension feature: dimension B repeats dimension A's burst
            # with a class-specific lag.
            burst_len = max(4, length // 8)
            burst = _class_pattern(rng, burst_len)
            burst_start = rng.integers(0, max(1, length - burst_len - class_lags[class_id]))
            series[coupled_dims[0], burst_start: burst_start + burst_len] += burst
            lagged_start = burst_start + class_lags[class_id]
            series[coupled_dims[1], lagged_start: lagged_start + burst_len] += burst
            instances.append(series)
            labels.append(class_id)

    X = np.stack(instances)
    y = np.asarray(labels)
    permutation = np.random.default_rng(0).permutation(len(y))
    return MultivariateDataset(
        X=X[permutation],
        y=y[permutation],
        name=name,
        metadata={
            "simulated": True,
            "paper_metadata": UEA_METADATA[name],
            "scaled_metadata": (n_classes, length, n_dims),
        },
    )


def make_uea_archive(names: Optional[List[str]] = None,
                     config: Optional[UEASimulationConfig] = None) -> Dict[str, MultivariateDataset]:
    """Simulate several UEA datasets, keyed by name."""
    names = names or UEA_DATASET_NAMES
    return {name: make_uea_dataset(name, config) for name in names}
