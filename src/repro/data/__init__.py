"""Dataset containers and generators (synthetic UCR/UEA/JIGSAWS stand-ins)."""

from .datasets import MultivariateDataset
from .jigsaws import (
    CLASS_NAMES as JIGSAWS_CLASS_NAMES,
    DISCRIMINANT_GESTURES,
    GESTURES,
    JigsawsConfig,
    discriminant_sensor_indices,
    make_jigsaws_dataset,
    sensor_names,
)
from .seeds import SEED_NAMES, seed_background, seed_instance
from .splits import train_validation_split, train_validation_test_split
from .synthetic import (
    SyntheticConfig,
    make_dataset,
    make_type1_dataset,
    make_type2_dataset,
)
from .uea import (
    UEA_DATASET_NAMES,
    UEA_METADATA,
    UEASimulationConfig,
    make_uea_archive,
    make_uea_dataset,
    scaled_metadata,
)

__all__ = [
    "MultivariateDataset",
    "SEED_NAMES",
    "seed_instance",
    "seed_background",
    "SyntheticConfig",
    "make_type1_dataset",
    "make_type2_dataset",
    "make_dataset",
    "UEA_DATASET_NAMES",
    "UEA_METADATA",
    "UEASimulationConfig",
    "make_uea_dataset",
    "make_uea_archive",
    "scaled_metadata",
    "JigsawsConfig",
    "make_jigsaws_dataset",
    "sensor_names",
    "discriminant_sensor_indices",
    "GESTURES",
    "DISCRIMINANT_GESTURES",
    "JIGSAWS_CLASS_NAMES",
    "train_validation_split",
    "train_validation_test_split",
]
