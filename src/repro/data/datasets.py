"""Dataset containers shared by every generator and experiment driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class MultivariateDataset:
    """A set of multivariate data series with labels.

    Attributes
    ----------
    X:
        Array of shape ``(instances, dimensions, length)``.
    y:
        Integer labels of shape ``(instances,)``.
    name:
        Human-readable dataset name.
    class_names:
        Optional names for classes, indexed by label.
    dim_names:
        Optional names for dimensions (e.g. sensor names).
    ground_truth:
        Optional array of shape ``(instances, dimensions, length)`` with 1 at
        positions of discriminant (injected) features and 0 elsewhere.  Used to
        compute the paper's Dr-acc measure.
    metadata:
        Free-form extra information (e.g. gesture segments for JIGSAWS).
    """

    X: np.ndarray
    y: np.ndarray
    name: str = "dataset"
    class_names: Optional[List[str]] = None
    dim_names: Optional[List[str]] = None
    ground_truth: Optional[np.ndarray] = None
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 3:
            raise ValueError(f"X must be (instances, dimensions, length), got {self.X.shape}")
        if len(self.y) != len(self.X):
            raise ValueError("X and y must have the same number of instances")
        if self.ground_truth is not None:
            self.ground_truth = np.asarray(self.ground_truth, dtype=np.float64)
            if self.ground_truth.shape != self.X.shape:
                raise ValueError("ground_truth must have the same shape as X")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_instances(self) -> int:
        return self.X.shape[0]

    @property
    def n_dimensions(self) -> int:
        return self.X.shape[1]

    @property
    def length(self) -> int:
        return self.X.shape[2]

    @property
    def n_classes(self) -> int:
        return int(len(np.unique(self.y)))

    def __len__(self) -> int:
        return self.n_instances

    def class_counts(self) -> Dict[int, int]:
        labels, counts = np.unique(self.y, return_counts=True)
        return dict(zip(labels.tolist(), counts.tolist()))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int], name_suffix: str = "") -> "MultivariateDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return MultivariateDataset(
            X=self.X[indices],
            y=self.y[indices],
            name=self.name + name_suffix,
            class_names=self.class_names,
            dim_names=self.dim_names,
            ground_truth=None if self.ground_truth is None else self.ground_truth[indices],
            metadata=dict(self.metadata),
        )

    def znormalize(self, eps: float = 1e-8) -> "MultivariateDataset":
        """Z-normalise each dimension of each instance independently."""
        mean = self.X.mean(axis=2, keepdims=True)
        std = self.X.std(axis=2, keepdims=True)
        normalized = (self.X - mean) / (std + eps)
        return MultivariateDataset(
            X=normalized,
            y=self.y.copy(),
            name=self.name,
            class_names=self.class_names,
            dim_names=self.dim_names,
            ground_truth=None if self.ground_truth is None else self.ground_truth.copy(),
            metadata=dict(self.metadata),
        )

    def summary(self) -> str:
        """One-line description used by examples and benchmark reports."""
        return (
            f"{self.name}: {self.n_instances} instances, "
            f"{self.n_dimensions} dimensions, length {self.length}, "
            f"{self.n_classes} classes"
        )
