"""Simulated JIGSAWS-like surgical kinematics data (Section 5.8 use case).

The paper's use case trains dCNN on the JIGSAWS suturing dataset: multivariate
kinematic recordings (76 sensors) of surgeons performing sutures with the
DaVinci surgical system, labeled by skill level (novice / intermediate /
expert).  dCAM is then used to find which sensors, during which gestures,
discriminate the novice class — the paper reports the master-tool-manipulator
(MTM) gripper angles and tooltip rotation sensors during gestures G6 and G9.

This simulator generates data with the same structure:

* 76 sensors in 4 groups of 19 (left/right patient-side manipulators PSM,
  left/right master tool manipulators MTM), each group containing 3 Cartesian
  positions, 9 rotation-matrix elements, 6 velocities and 1 gripper angle.
* Each instance is a sequence of gestures G1..G11 (each a contiguous segment).
* Novice surgeons differ from intermediates/experts through extra tremor and
  altered gripper-angle / rotation patterns during gestures G6 and G9 — the
  planted ground truth that dCAM should recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .datasets import MultivariateDataset

N_SENSORS_PER_GROUP = 19
SENSOR_GROUPS = ("PSM_left", "PSM_right", "MTM_left", "MTM_right")
N_SENSORS = N_SENSORS_PER_GROUP * len(SENSOR_GROUPS)

GESTURES = tuple(f"G{i}" for i in range(1, 12))
#: Gestures whose execution discriminates novices in the paper's analysis.
DISCRIMINANT_GESTURES = ("G6", "G9")

CLASS_NAMES = ["novice", "intermediate", "expert"]


def sensor_names() -> List[str]:
    """Return the 76 sensor names, grouped as in the JIGSAWS kinematics."""
    names: List[str] = []
    for group in SENSOR_GROUPS:
        names.extend(f"{group}_pos_{axis}" for axis in "xyz")
        names.extend(f"{group}_rot_{i}" for i in range(1, 10))
        names.extend(f"{group}_linvel_{axis}" for axis in "xyz")
        names.extend(f"{group}_angvel_{axis}" for axis in "xyz")
        names.append(f"{group}_gripper_angle")
    return names


def _sensor_indices_by_kind() -> Dict[str, List[int]]:
    """Map sensor kinds (position, rotation, velocity, gripper) to indices."""
    kinds: Dict[str, List[int]] = {"position": [], "rotation": [], "velocity": [], "gripper": []}
    for index, name in enumerate(sensor_names()):
        if "_pos_" in name:
            kinds["position"].append(index)
        elif "_rot_" in name:
            kinds["rotation"].append(index)
        elif "vel" in name:
            kinds["velocity"].append(index)
        else:
            kinds["gripper"].append(index)
    return kinds


#: Sensors planted as discriminant for the novice class (MTM gripper angles and
#: a few right-MTM/PSM rotation elements), mirroring Figure 13(c)/(d).
def discriminant_sensor_indices() -> List[int]:
    names = sensor_names()
    picked = []
    for index, name in enumerate(names):
        if name.endswith("gripper_angle") and name.startswith("MTM"):
            picked.append(index)
        if name in ("MTM_right_rot_5", "MTM_right_rot_7", "PSM_right_rot_2", "PSM_right_rot_9"):
            picked.append(index)
    return picked


@dataclass
class JigsawsConfig:
    """Scale parameters of the simulated JIGSAWS dataset."""

    n_novice: int = 19
    n_intermediate: int = 10
    n_expert: int = 10
    gesture_length: int = 12
    n_gesture_repeats: int = 1
    noise: float = 0.2
    random_state: Optional[int] = 7


def _gesture_sequence(config: JigsawsConfig, rng: np.random.Generator) -> List[str]:
    """Sequence of gestures performed in one trial (all 11, possibly repeated)."""
    sequence: List[str] = []
    for _ in range(config.n_gesture_repeats):
        sequence.extend(GESTURES)
    return sequence


def _base_sensor_signal(sensor_kind: str, gesture_index: int, length: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Smooth, gesture-dependent baseline movement for one sensor."""
    t = np.linspace(0, 1, length)
    frequency = 1.0 + (gesture_index % 4)
    phase = rng.uniform(0, 2 * np.pi)
    if sensor_kind == "position":
        return 0.8 * np.sin(2 * np.pi * frequency * t + phase)
    if sensor_kind == "rotation":
        return 0.5 * np.cos(2 * np.pi * frequency * t + phase)
    if sensor_kind == "velocity":
        return 0.4 * np.sin(4 * np.pi * frequency * t + phase)
    # gripper angle: open/close ramps
    return np.abs(np.sin(np.pi * frequency * t + phase))


def make_jigsaws_dataset(config: Optional[JigsawsConfig] = None) -> MultivariateDataset:
    """Simulate the JIGSAWS suturing dataset.

    Returns a :class:`MultivariateDataset` whose metadata contains the gesture
    boundaries (``gesture_segments``: list of ``(gesture, start, end)`` per
    instance) and the planted discriminant sensors/gestures, so experiments can
    verify that dCAM recovers them.
    """
    config = config or JigsawsConfig()
    rng = np.random.default_rng(config.random_state)
    names = sensor_names()
    kinds = _sensor_indices_by_kind()
    kind_of: Dict[int, str] = {}
    for kind, indices in kinds.items():
        for index in indices:
            kind_of[index] = kind

    discriminant_sensors = discriminant_sensor_indices()
    counts = {0: config.n_novice, 1: config.n_intermediate, 2: config.n_expert}

    instances, labels, masks, segments_per_instance = [], [], [], []
    for class_id, count in counts.items():
        for _ in range(count):
            sequence = _gesture_sequence(config, rng)
            length = len(sequence) * config.gesture_length
            series = rng.normal(0.0, config.noise, size=(N_SENSORS, length))
            mask = np.zeros_like(series)
            segments: List[Tuple[str, int, int]] = []
            for gesture_position, gesture in enumerate(sequence):
                start = gesture_position * config.gesture_length
                end = start + config.gesture_length
                segments.append((gesture, start, end))
                gesture_index = GESTURES.index(gesture)
                for sensor in range(N_SENSORS):
                    series[sensor, start:end] += _base_sensor_signal(
                        kind_of[sensor], gesture_index, config.gesture_length, rng)
                if class_id == 0 and gesture in DISCRIMINANT_GESTURES:
                    # Novice signature: tremor + altered gripper/rotation pattern
                    # on the discriminant sensors during G6 and G9.
                    t = np.linspace(0, 1, config.gesture_length)
                    tremor = 0.9 * np.sin(2 * np.pi * 8 * t)
                    for sensor in discriminant_sensors:
                        series[sensor, start:end] += tremor + 0.6
                        mask[sensor, start:end] = 1.0
            instances.append(series)
            labels.append(class_id)
            masks.append(mask)
            segments_per_instance.append(segments)

    X = np.stack(instances)
    return MultivariateDataset(
        X=X,
        y=np.asarray(labels),
        name="jigsaws-suturing-simulated",
        class_names=list(CLASS_NAMES),
        dim_names=names,
        ground_truth=np.stack(masks),
        metadata={
            "gesture_segments": segments_per_instance,
            "gestures": list(GESTURES),
            "discriminant_gestures": list(DISCRIMINANT_GESTURES),
            "discriminant_sensors": discriminant_sensors,
            "sensor_groups": list(SENSOR_GROUPS),
        },
    )
