"""Synthetic Type 1 and Type 2 benchmarks with known discriminant features.

These reproduce the dataset construction of Section 5.1.1:

* **Type 1** — class 1 instances are pure "background" (each dimension is a
  concatenation of random seed instances from seed class 0).  Class 2
  instances take the same background and *inject a pattern from seed class 1
  into 2 random dimensions at random (different) positions*.  The injected
  patterns are what discriminates the two classes, and their positions form
  the ground truth for Dr-acc.

* **Type 2** — *both* classes contain injected patterns.  Class 1 injects
  patterns into ``n_injections`` random dimensions at *different* positions;
  class 2 injects patterns such that two of them land at the *same* position
  (same timestamp) in two random dimensions.  The discriminant factor is the
  temporal co-occurrence across dimensions, which can only be detected by
  models able to compare dimensions.  The two co-located patterns are the
  ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .datasets import MultivariateDataset
from .seeds import seed_background, seed_instance


@dataclass
class SyntheticConfig:
    """Parameters of the Type 1 / Type 2 generators.

    Attributes mirror the knobs varied in the paper's Table 3 and Figures 9/10:
    the seed dataset, the number of dimensions ``n_dimensions`` (10-100 in the
    paper), the number of instances per class and the series length.
    """

    seed_name: str = "starlight"
    n_dimensions: int = 10
    n_instances_per_class: int = 20
    series_length: int = 128
    seed_instance_length: int = 32
    pattern_length: int = 32
    n_injections: int = 2
    random_state: Optional[int] = None

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.random_state)


def _background(config: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Build one instance whose dimensions are concatenated seed-class-0 series."""
    return np.stack([
        seed_background(config.seed_name, 0, config.series_length,
                        config.seed_instance_length, rng)
        for _ in range(config.n_dimensions)
    ])


def _inject(series: np.ndarray, mask: np.ndarray, dimension: int, position: int,
            pattern: np.ndarray) -> None:
    """Overwrite ``series[dimension, position:position+len]`` with ``pattern``."""
    length = len(pattern)
    series[dimension, position: position + length] = pattern
    mask[dimension, position: position + length] = 1.0


def _random_positions(rng: np.random.Generator, count: int, series_length: int,
                      pattern_length: int, distinct: bool) -> np.ndarray:
    """Draw injection start positions, optionally pairwise non-overlapping."""
    max_start = series_length - pattern_length
    if max_start <= 0:
        raise ValueError("pattern_length must be smaller than series_length")
    if not distinct:
        return rng.integers(0, max_start + 1, size=count)
    positions: list[int] = []
    attempts = 0
    while len(positions) < count:
        candidate = int(rng.integers(0, max_start + 1))
        if all(abs(candidate - p) >= pattern_length for p in positions) or attempts > 200:
            positions.append(candidate)
        attempts += 1
    return np.asarray(positions)


def make_type1_dataset(config: SyntheticConfig) -> MultivariateDataset:
    """Generate a Type 1 dataset (patterns in a subset of dims, different times)."""
    rng = config.rng()
    instances, labels, masks = [], [], []
    for class_id in (0, 1):
        for _ in range(config.n_instances_per_class):
            series = _background(config, rng)
            mask = np.zeros_like(series)
            if class_id == 1:
                dims = rng.choice(config.n_dimensions, size=min(2, config.n_dimensions),
                                  replace=False)
                positions = _random_positions(rng, len(dims), config.series_length,
                                              config.pattern_length, distinct=True)
                for dimension, position in zip(dims, positions):
                    pattern = seed_instance(config.seed_name, 1, config.pattern_length, rng)
                    _inject(series, mask, int(dimension), int(position), pattern)
            instances.append(series)
            labels.append(class_id)
            masks.append(mask)
    X = np.stack(instances)
    return MultivariateDataset(
        X=X,
        y=np.asarray(labels),
        name=f"{config.seed_name}-type1-D{config.n_dimensions}",
        class_names=["class_1_background", "class_2_injected"],
        ground_truth=np.stack(masks),
        metadata={"type": 1, "config": config},
    )


def make_type2_dataset(config: SyntheticConfig) -> MultivariateDataset:
    """Generate a Type 2 dataset (discriminant = same-timestamp co-occurrence)."""
    rng = config.rng()
    instances, labels, masks = [], [], []
    n_injections = max(2, config.n_injections)
    for class_id in (0, 1):
        for _ in range(config.n_instances_per_class):
            series = _background(config, rng)
            mask = np.zeros_like(series)
            dims = rng.choice(config.n_dimensions, size=min(n_injections, config.n_dimensions),
                              replace=False)
            if class_id == 0:
                # Patterns at pairwise different positions: no temporal alignment.
                positions = _random_positions(rng, len(dims), config.series_length,
                                              config.pattern_length, distinct=True)
                for dimension, position in zip(dims, positions):
                    pattern = seed_instance(config.seed_name, 1, config.pattern_length, rng)
                    _inject(series, mask, int(dimension), int(position), pattern)
                # Class 1 injections are not the discriminant features: reset mask.
                mask[...] = 0.0
            else:
                # Two patterns at the SAME position (the discriminant feature),
                # remaining ones at different positions.
                shared_position = int(_random_positions(rng, 1, config.series_length,
                                                        config.pattern_length, False)[0])
                aligned_dims = dims[:2]
                for dimension in aligned_dims:
                    pattern = seed_instance(config.seed_name, 1, config.pattern_length, rng)
                    _inject(series, mask, int(dimension), shared_position, pattern)
                other_positions = _random_positions(rng, len(dims) - 2, config.series_length,
                                                    config.pattern_length, distinct=True)
                for dimension, position in zip(dims[2:], other_positions):
                    pattern = seed_instance(config.seed_name, 1, config.pattern_length, rng)
                    series[int(dimension), position: position + config.pattern_length] = pattern
            instances.append(series)
            labels.append(class_id)
            masks.append(mask)
    X = np.stack(instances)
    return MultivariateDataset(
        X=X,
        y=np.asarray(labels),
        name=f"{config.seed_name}-type2-D{config.n_dimensions}",
        class_names=["class_1_misaligned", "class_2_aligned"],
        ground_truth=np.stack(masks),
        metadata={"type": 2, "config": config},
    )


def make_dataset(dataset_type: int, config: SyntheticConfig) -> MultivariateDataset:
    """Dispatch helper: ``dataset_type`` is 1 or 2."""
    if dataset_type == 1:
        return make_type1_dataset(config)
    if dataset_type == 2:
        return make_type2_dataset(config)
    raise ValueError("dataset_type must be 1 or 2")
