"""``python -m repro`` — run the paper's experiment suite from the shell.

Examples::

    python -m repro list
    python -m repro run table3 --scale tiny --workers 4 --json out.json
    python -m repro run figure9 --scale small --workers 8 --cache-dir .repro-cache
    python -m repro run table3 --models resnet,dcnn --dimensions 4 --epochs 5
    python -m repro export-model --model dcnn --scale tiny --store ./models
    python -m repro serve --store ./models --port 8080
    python -m repro stream --store ./models --hop 8 --samples 256 --json-lines
    python -m repro byte-store-server --port 7070 --dir /srv/repro-store
    python -m repro run table3 --executor fleet --fleet-port 7075 --cache-dir .repro-cache
    python -m repro worker --connect 127.0.0.1:7075 --cache-dir .repro-cache

Every experiment goes through the :mod:`repro.runtime` job-graph executor:
``--workers N`` fans the independent (dataset, model, seed) cells out over a
process pool (serial and parallel runs produce identical numbers), and
``--cache-dir`` enables the content-addressed result cache so drivers sharing
a protocol (Table 3 / Figure 9, Table 2 / Figure 8) and repeated invocations
reuse trained-model results.

``export-model`` trains (or loads from the result cache) one classifier and
registers it into a :class:`repro.serve.ModelArtifactStore`; ``serve`` answers
classify/explain requests over HTTP from such a store (see
:mod:`repro.serve`); ``stream`` replays a feed through a
:class:`repro.stream.StreamSession`, emitting one classification +
explanation per window hop (see :mod:`repro.stream` / docs/streaming.md).

Distribution (see :mod:`repro.dist`): ``byte-store-server`` runs the shared
remote cache tier every store can point at via ``--remote-store host:port``;
``run --executor fleet`` publishes work units to an embedded coordinator that
``worker --connect host:port`` processes (on any machine) pull from.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from .cache import ResultCache
from .executor import Executor, executor_label, make_executor


@dataclass(frozen=True)
class ExperimentEntry:
    """One CLI-runnable experiment: driver adapter + JSON projection."""

    name: str
    description: str
    run: Callable[[Any, argparse.Namespace, Executor, Optional[ResultCache]], Any]
    to_json: Callable[[Any], Any]
    format: Callable[[Any], str]
    #: Which of the filter flags (--models/--dimensions/--seeds/--datasets)
    #: this experiment consumes; others are rejected rather than silently
    #: ignored.
    options: frozenset = frozenset()


def _csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _csv_ints(value: Optional[str]) -> Optional[List[int]]:
    items = _csv(value)
    return None if items is None else [int(item) for item in items]


def _series_json(result) -> Dict[str, Any]:
    """Figure 9 result → JSON-friendly nested dicts."""
    return {
        "dimensions": result.dimensions,
        "models": result.models,
        "c_acc": {str(dataset_type): mapping for dataset_type, mapping in result.c_acc.items()},
        "dr_acc": {str(dataset_type): mapping for dataset_type, mapping in result.dr_acc.items()},
    }


def _figure10_json(result) -> Dict[str, Any]:
    return {
        "k_values": result.k_values,
        "curves": {
            f"{model}-type{dataset_type}-D{dims}": values
            for (model, dataset_type, dims), values in result.curves.items()
        },
        "k_to_90pct": {
            f"{model}-type{dataset_type}-D{dims}": int(needed)
            for (model, dataset_type, dims), needed in result.permutations_to_reach().items()
        },
    }


def _figure12_json(result) -> Dict[str, Any]:
    return {
        "lengths": result.lengths,
        "dimensions": result.dimensions,
        "k_values": result.k_values,
        "epoch_time_vs_length": result.epoch_time_vs_length,
        "epoch_time_vs_dimensions": result.epoch_time_vs_dimensions,
        "dcam_time_vs_dimensions": result.dcam_time_vs_dimensions,
        "dcam_time_vs_length": result.dcam_time_vs_length,
        "dcam_time_vs_k": result.dcam_time_vs_k,
        "convergence": result.convergence,
    }


def _figure13_json(result) -> Dict[str, Any]:
    return {
        "train_accuracy": result.train_accuracy,
        "test_accuracy": result.test_accuracy,
        "top_sensors": [result.sensor_names[s] for s in result.top_sensors],
        "top_gestures": [[gesture, float(score)] for gesture, score in result.top_gestures],
        "sensor_recovery_rate": result.sensor_recovery_rate(),
        "gesture_recovery_rate": result.gesture_recovery_rate(),
    }


def _experiment_table() -> Dict[str, ExperimentEntry]:
    """Build the name → entry table (imports the drivers lazily)."""
    from ..experiments import (
        run_extraction_ablation,
        run_figure8,
        run_figure9,
        run_figure10,
        run_figure11,
        run_figure12,
        run_figure13,
        run_ng_filter_ablation,
        run_table2,
        run_table3,
    )

    return {
        "table2": ExperimentEntry(
            "table2",
            "C-acc over (simulated) UCR/UEA datasets",
            lambda scale, args, ex, cache: run_table2(
                scale,
                dataset_names=_csv(args.datasets),
                models=_csv(args.models),
                base_seed=args.base_seed,
                executor=ex,
                cache=cache,
            ),
            lambda result: result.as_rows(),
            lambda result: result.format(),
            options=frozenset({"models", "datasets"}),
        ),
        "table3": ExperimentEntry(
            "table3",
            "C-acc and Dr-acc on the synthetic Type 1 / Type 2 benchmarks",
            lambda scale, args, ex, cache: run_table3(
                scale,
                seeds=_csv(args.seeds),
                dimensions=_csv_ints(args.dimensions),
                models=_csv(args.models),
                base_seed=args.base_seed,
                executor=ex,
                cache=cache,
            ),
            lambda result: result.as_rows(),
            lambda result: result.format(),
            options=frozenset({"models", "dimensions", "seeds"}),
        ),
        "figure8": ExperimentEntry(
            "figure8",
            "d-architectures vs counterparts scatter (Table 2 protocol)",
            lambda scale, args, ex, cache: run_figure8(
                scale, dataset_names=_csv(args.datasets), base_seed=args.base_seed, executor=ex, cache=cache
            ),
            lambda result: result.as_rows(),
            lambda result: result.format(),
            options=frozenset({"datasets"}),
        ),
        "figure9": ExperimentEntry(
            "figure9",
            "C-acc / Dr-acc vs number of dimensions (Table 3 protocol)",
            lambda scale, args, ex, cache: run_figure9(
                scale,
                dimensions=_csv_ints(args.dimensions),
                models=_csv(args.models),
                base_seed=args.base_seed,
                executor=ex,
                cache=cache,
            ),
            _series_json,
            lambda result: result.format(),
            options=frozenset({"models", "dimensions"}),
        ),
        "figure10": ExperimentEntry(
            "figure10",
            "Dr-acc vs number of permutations k",
            lambda scale, args, ex, cache: run_figure10(
                scale,
                dimensions=_csv_ints(args.dimensions),
                models=_csv(args.models),
                base_seed=args.base_seed,
                executor=ex,
                cache=cache,
            ),
            _figure10_json,
            lambda result: result.format(),
            options=frozenset({"models", "dimensions"}),
        ),
        "figure11": ExperimentEntry(
            "figure11",
            "C-acc / Dr-acc / ng-over-k relations per configuration",
            lambda scale, args, ex, cache: run_figure11(
                scale,
                models=_csv(args.models),
                seeds=_csv(args.seeds),
                dimensions=_csv_ints(args.dimensions),
                base_seed=args.base_seed,
                executor=ex,
                cache=cache,
            ),
            lambda result: result.as_rows(),
            lambda result: result.format(),
            options=frozenset({"models", "seeds", "dimensions"}),
        ),
        "figure12": ExperimentEntry(
            "figure12",
            "training / dCAM execution-time panels",
            lambda scale, args, ex, cache: run_figure12(
                scale,
                models=_csv(args.models),
                dimensions=_csv_ints(args.dimensions),
                base_seed=args.base_seed,
                executor=ex,
                cache=cache,
            ),
            _figure12_json,
            lambda result: result.format(),
            options=frozenset({"models", "dimensions"}),
        ),
        "figure13": ExperimentEntry(
            "figure13",
            "surgeon-skill use case (simulated JIGSAWS)",
            lambda scale, args, ex, cache: run_figure13(
                scale, base_seed=args.base_seed, executor=ex, cache=cache
            ),
            _figure13_json,
            lambda result: result.format(),
        ),
        "ablation-extraction": ExperimentEntry(
            "ablation-extraction",
            "dCAM extraction-rule ablation",
            lambda scale, args, ex, cache: run_extraction_ablation(
                scale, base_seed=args.base_seed, executor=ex, cache=cache
            ),
            lambda result: result.rows,
            lambda result: result.format("Ablation — dCAM extraction rules"),
        ),
        "ablation-ng-filter": ExperimentEntry(
            "ablation-ng-filter",
            "dCAM permutation-filter ablation",
            lambda scale, args, ex, cache: run_ng_filter_ablation(
                scale, base_seed=args.base_seed, executor=ex, cache=cache
            ),
            lambda result: result.rows,
            lambda result: result.format("Ablation — ng/k permutation filter"),
        ),
    }


def _build_scale(args: argparse.Namespace):
    from ..experiments import get_scale

    scale = get_scale(args.scale, random_state=args.random_state)
    overrides = {}
    if args.n_runs is not None:
        overrides["n_runs"] = args.n_runs
    if args.k is not None:
        overrides["k_permutations"] = args.k
    training_overrides = {}
    if args.epochs is not None:
        training_overrides["epochs"] = args.epochs
    if args.engine is not None:
        training_overrides["engine"] = args.engine
    if args.precision is not None:
        training_overrides["precision"] = args.precision
    if training_overrides:
        overrides["training"] = replace(scale.training, **training_overrides)
    return scale.with_overrides(**overrides) if overrides else scale


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "experiment", metavar="EXPERIMENT", help="experiment name (see `python -m repro list`)"
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "paper"],
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; >1 enables the parallel executor",
    )
    parser.add_argument(
        "--executor",
        default="auto",
        choices=["auto", "serial", "parallel", "fleet"],
        help="execution strategy: auto derives serial/parallel from "
        "--workers; fleet publishes units to an embedded coordinator "
        "that `python -m repro worker` processes pull from "
        "(default: auto)",
    )
    parser.add_argument(
        "--fleet-host",
        default="127.0.0.1",
        metavar="HOST",
        help="interface the fleet coordinator listens on (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--fleet-port",
        type=int,
        default=0,
        metavar="PORT",
        help="fleet coordinator port; 0 picks an ephemeral port, printed at start (default: 0)",
    )
    parser.add_argument(
        "--json", dest="json_path", metavar="PATH", help="write the result (plus run metadata) as JSON"
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", help="enable the content-addressed result cache, persisted here"
    )
    parser.add_argument(
        "--remote-store",
        metavar="HOST:PORT",
        help="shared remote byte-store tier behind the result cache "
        "(see `python -m repro byte-store-server`); enables the "
        "cache even without --cache-dir",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="base seed the per-unit seeds derive from (default: 0)"
    )
    parser.add_argument(
        "--random-state", type=int, default=0, help="random state baked into the scale preset (default: 0)"
    )
    parser.add_argument("--models", metavar="A,B,...", help="comma-separated model subset (driver-dependent)")
    parser.add_argument(
        "--dimensions", metavar="D1,D2,...", help="comma-separated dimension sweep (driver-dependent)"
    )
    parser.add_argument(
        "--seeds", metavar="NAME,...", help="comma-separated synthetic seed datasets (driver-dependent)"
    )
    parser.add_argument(
        "--datasets", metavar="NAME,...", help="comma-separated UEA dataset names (table2 / figure8)"
    )
    parser.add_argument(
        "--n-runs", type=int, metavar="N", help="override the scale's train/evaluate repetitions"
    )
    parser.add_argument("--k", type=int, metavar="K", help="override the scale's dCAM permutation count")
    parser.add_argument("--epochs", type=int, metavar="N", help="override the scale's training epochs")
    parser.add_argument(
        "--engine",
        choices=["fused", "legacy"],
        help="training engine: the fused prepare-once pipeline "
        "(default) or the reference legacy loop "
        "(float-identical, for cross-checking)",
    )
    parser.add_argument(
        "--precision",
        choices=["float64", "float32"],
        help="training compute precision: float64 (the "
        "bit-exact reference, default) or float32 (the "
        "opt-in fast tier; requires the fused engine)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished work unit plus the run's telemetry counters",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the formatted table/figure output")


def _remote_store(address: Optional[str]):
    """``--remote-store host:port`` → :class:`repro.dist.RemoteByteStore` (or None)."""
    if not address:
        return None
    from ..dist import RemoteByteStore

    return RemoteByteStore(address)


def _make_run_executor(args: argparse.Namespace) -> Executor:
    if args.executor == "fleet":
        from ..dist import FleetConfig, FleetExecutor

        executor = FleetExecutor(FleetConfig(host=args.fleet_host, port=args.fleet_port))
        print(
            f"[repro] fleet coordinator listening on {executor.address} — start workers "
            f"with `python -m repro worker --connect {executor.address}`",
            file=sys.stderr,
        )
        return executor
    if args.executor == "serial":
        return make_executor(1)
    if args.executor == "parallel":
        return make_executor(max(2, args.workers))
    return make_executor(args.workers)


def _command_list() -> int:
    entries = _experiment_table()
    width = max(len(name) for name in entries)
    print("Available experiments (python -m repro run <name> [options]):")
    for name, entry in entries.items():
        print(f"  {name.ljust(width)}  {entry.description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    entries = _experiment_table()
    if args.experiment not in entries:
        print(
            f"error: unknown experiment {args.experiment!r}; choose from: {', '.join(entries)}",
            file=sys.stderr,
        )
        return 2
    entry = entries[args.experiment]
    # Reject filter flags this experiment does not consume — silently
    # ignoring them would run (and label) the default configuration.
    unsupported = [
        f"--{name}"
        for name in ("models", "dimensions", "seeds", "datasets")
        if getattr(args, name) is not None and name not in entry.options
    ]
    if unsupported:
        supported = ", ".join(f"--{name}" for name in sorted(entry.options)) or "none"
        print(
            f"error: {entry.name} does not support {', '.join(unsupported)} "
            f"(supported filter flags: {supported})",
            file=sys.stderr,
        )
        return 2
    scale = _build_scale(args)
    executor = _make_run_executor(args)
    cache = (
        ResultCache(directory=args.cache_dir, remote=_remote_store(args.remote_store))
        if args.cache_dir or args.remote_store
        else None
    )

    print(
        f"[repro] running {entry.name} at scale={scale.name} "
        f"executor={executor_label(executor)}"
        + (f" cache={args.cache_dir}" if args.cache_dir else "")
        + (f" remote-store={args.remote_store}" if args.remote_store else ""),
        file=sys.stderr,
    )
    start = time.perf_counter()
    try:
        if args.progress:
            from ..telemetry import Telemetry
            from .api import progress_hooks

            telemetry = Telemetry()

            def on_unit(index, total, unit, source):
                print(f"[repro] unit {index + 1}/{total} {unit.describe()} [{source}]", file=sys.stderr)

            with progress_hooks(telemetry, on_unit):
                result = entry.run(scale, args, executor, cache)
            counters = ", ".join(f"{name}={value}" for name, value in sorted(telemetry.snapshot().items()))
            print(f"[repro] telemetry: {counters}", file=sys.stderr)
        else:
            result = entry.run(scale, args, executor, cache)
    finally:
        close = getattr(executor, "close", None)
        if close is not None:
            close()  # a fleet coordinator signals its workers to shut down
    elapsed = time.perf_counter() - start
    cache_line = ""
    if cache is not None:
        cache_line = f" cache hits={cache.stats.hits}" f" misses={cache.stats.misses}"
    print(f"[repro] {entry.name} finished in {elapsed:.2f}s{cache_line}", file=sys.stderr)

    if not args.quiet:
        print(entry.format(result))

    if args.json_path:
        json_dir = os.path.dirname(args.json_path)
        if json_dir:
            os.makedirs(json_dir, exist_ok=True)
        record = {
            "experiment": entry.name,
            "scale": scale.name,
            "workers": args.workers,
            "base_seed": args.base_seed,
            "elapsed_seconds": elapsed,
            "cache": None if cache is None else {"hits": cache.stats.hits, "misses": cache.stats.misses},
            "result": entry.to_json(result),
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"[repro] JSON written to {args.json_path}", file=sys.stderr)
    return 0


def _add_export_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", required=True, metavar="DIR", help="model artifact store directory (created if missing)"
    )
    parser.add_argument(
        "--model", required=True, metavar="NAME", help="architecture to train/export (see repro.models)"
    )
    parser.add_argument("--name", metavar="ARTIFACT", help="artifact name (default: <model>-<scale>)")
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "small", "paper"],
        help="experiment scale preset (default: tiny)",
    )
    parser.add_argument(
        "--seed-name", default="starlight", help="synthetic seed dataset to train on (default: starlight)"
    )
    parser.add_argument(
        "--dataset-type", type=int, default=1, choices=[1, 2], help="synthetic benchmark type (default: 1)"
    )
    parser.add_argument(
        "--dimensions", type=int, metavar="D", help="number of dimensions (default: the scale's synthetic D)"
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="config seed the training run derives from (default: 0)"
    )
    parser.add_argument(
        "--random-state", type=int, default=0, help="random state baked into the scale preset (default: 0)"
    )
    parser.add_argument("--epochs", type=int, metavar="N", help="override the scale's training epochs")
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="runtime result cache: re-exports (and sweeps that "
        "already trained this configuration) skip training",
    )
    parser.add_argument(
        "--remote-store",
        metavar="HOST:PORT",
        help="shared remote byte store: the artifact is also published "
        "fleet-wide so other hosts can serve it without re-exporting",
    )
    parser.add_argument(
        "--overwrite", action="store_true", help="replace an existing artifact of the same name"
    )


def _command_export_model(args: argparse.Namespace) -> int:
    from ..experiments import get_scale
    from ..models.registry import available_models, create_model
    from ..serve.engine import probe_batch_parity
    from ..serve.store import ModelArtifactStore
    from .api import run as run_spec
    from .spec import ExperimentSpec, WorkUnit

    if args.model not in available_models():
        print(
            f"error: unknown model {args.model!r}; choose from: {', '.join(available_models())}",
            file=sys.stderr,
        )
        return 2
    scale = get_scale(args.scale, random_state=args.random_state)
    if args.epochs is not None:
        scale = scale.with_overrides(training=replace(scale.training, epochs=args.epochs))
    n_dimensions = args.dimensions or scale.synthetic.n_dimensions
    unit = WorkUnit.create(
        "trained_model_state",
        seed_name=args.seed_name,
        dataset_type=args.dataset_type,
        n_dimensions=n_dimensions,
        model_name=args.model,
        config_seed=args.base_seed,
    )
    spec = ExperimentSpec(name="export-model", scale=scale, units=(unit,))
    cache = (
        ResultCache(directory=args.cache_dir, remote=_remote_store(args.remote_store))
        if args.cache_dir or args.remote_store
        else None
    )

    print(
        f"[repro] training {args.model} at scale={scale.name} "
        f"(D={n_dimensions}, type={args.dataset_type}, seed={args.base_seed})"
        + (f" cache={args.cache_dir}" if args.cache_dir else ""),
        file=sys.stderr,
    )
    start = time.perf_counter()
    payload = run_spec(spec, cache=cache)[0]
    trained = "cache" if cache is not None and cache.stats.hits else "trained"
    print(f"[repro] model state ready in {time.perf_counter() - start:.2f}s [{trained}]", file=sys.stderr)

    model = create_model(
        args.model,
        payload["n_dimensions"],
        payload["length"],
        payload["n_classes"],
        **scale.model_kwargs(args.model),
    )
    model.load_state_dict(payload["state"])
    if payload.get("training_mode"):
        model.train()
    else:
        model.eval()
    parity = probe_batch_parity(model)
    store = ModelArtifactStore(args.store, remote=_remote_store(args.remote_store))
    artifact_name = args.name or f"{args.model}-{scale.name}"
    artifact = store.register(
        artifact_name,
        model,
        model_name=args.model,
        metadata={
            "model_kwargs": scale.model_kwargs(args.model),
            "scale": scale.name,
            "seed_name": args.seed_name,
            "dataset_type": args.dataset_type,
            "config_seed": args.base_seed,
            "dataset_fingerprint": payload["dataset_fingerprint"],
            "epochs_run": payload["epochs_run"],
            "default_k": scale.k_permutations,
            "batch_parity": parity.to_json(),
        },
        overwrite=args.overwrite,
    )
    print(
        f"[repro] registered {artifact_name!r} in {args.store} "
        f"(state {artifact.state_hash[:12]}…, family {artifact.explainer_family}, "
        f"batch parity {parity.to_json()})",
        file=sys.stderr,
    )
    return 0


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", required=True, metavar="DIR", help="model artifact store directory (see export-model)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port; 0 picks an ephemeral port (default: 8080)"
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=8,
        metavar="N",
        help="micro-batcher flush threshold; 1 disables "
        "coalescing; the adaptive policy starts here "
        "(default: 8)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="max milliseconds a queued request waits for companions (default: 2)",
    )
    parser.add_argument(
        "--policy",
        default="adaptive",
        choices=["static", "adaptive"],
        help="batching policy: fixed flush bounds, or "
        "feedback-driven bounds adapted to observed "
        "queue depth / flush latency (default: adaptive)",
    )
    parser.add_argument(
        "--max-adaptive-batch-size",
        type=int,
        default=64,
        metavar="N",
        help="hard upper bound of the adaptive policy's flush size (default: 64)",
    )
    parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="adaptive policy's per-flush latency budget: "
        "sustained flushes above it shrink the batch "
        "(default: 250)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=512,
        metavar="N",
        help="per-(model, kind) in-flight bound; requests "
        "over it are shed with HTTP 429 + Retry-After; "
        "0 disables shedding (default: 512)",
    )
    parser.add_argument(
        "--drain-timeout-s",
        type=float,
        default=30.0,
        metavar="S",
        help="graceful-shutdown drain bound: queued requests unserved after this fail fast (default: 30)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", help="persist the explanation cache here (memory-only otherwise)"
    )
    parser.add_argument(
        "--cache-memory-mb",
        type=float,
        default=64.0,
        metavar="MB",
        help="LRU bound of the in-memory cache tier (default: 64)",
    )
    parser.add_argument(
        "--cache-disk-mb",
        type=float,
        metavar="MB",
        help="LRU bound of the on-disk cache tier (default: unbounded)",
    )
    parser.add_argument(
        "--precision",
        default="float64",
        choices=["float64", "float32"],
        help="serving compute precision: float64 (bit-exact "
        "reference, default) or float32 (opt-in fast tier; "
        "responses cached under precision-qualified keys)",
    )
    parser.add_argument(
        "--max-total-depth",
        type=int,
        metavar="N",
        help="global in-flight bound across all (model, kind) groups; "
        "explains shed at 75%% of it, classifies at 100%% "
        "(default: disabled)",
    )
    parser.add_argument(
        "--remote-store",
        metavar="HOST:PORT",
        help="shared remote byte store backing the artifact store and "
        "the explanation cache: artifacts exported on other hosts "
        "become servable here, and cache entries are fleet-shared",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of requests traced end-to-end (0..1); sampled "
        "spans are exported at /trace and `repro trace-dump --url` "
        "(default: 0, tracing off)",
    )


def _command_serve(args: argparse.Namespace) -> int:
    from ..obs import ObsConfig
    from ..serve.cache import ExplanationCache
    from ..serve.http import run_server
    from ..serve.service import ExplanationService, ServeConfig
    from ..serve.store import ModelArtifactStore

    store = ModelArtifactStore(args.store, remote=_remote_store(args.remote_store))
    names = store.list_names()
    if not names:
        print(
            f"error: no model artifacts in {args.store!r}; register one with "
            "`python -m repro export-model` first",
            file=sys.stderr,
        )
        return 2
    cache = ExplanationCache(
        directory=args.cache_dir,
        max_memory_bytes=int(args.cache_memory_mb * 1024 * 1024),
        max_disk_bytes=None if args.cache_disk_mb is None else int(args.cache_disk_mb * 1024 * 1024),
        remote=_remote_store(args.remote_store),
    )
    config = ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        batch_policy=args.policy,
        max_adaptive_batch_size=args.max_adaptive_batch_size,
        policy_latency_budget_ms=args.latency_budget_ms,
        max_queue_depth=args.max_queue_depth or None,
        max_total_depth=args.max_total_depth,
        drain_timeout_s=args.drain_timeout_s,
        precision=args.precision,
        obs=ObsConfig(trace_sample_rate=args.trace_sample_rate),
    )
    service = ExplanationService(store, cache=cache, config=config)
    print(
        f"[repro] serving {len(names)} model(s) from {args.store}: "
        f"{', '.join(names)} "
        f"[policy {service.batcher.policy.describe()}, "
        f"queue bound {config.max_queue_depth or 'unbounded'}]"
        + (f" [remote store {args.remote_store}]" if args.remote_store else ""),
        file=sys.stderr,
    )

    def announce(host, port):
        print(
            f"[repro] listening on http://{host}:{port} "
            f"(/models /classify /explain /healthz /metrics /trace; Ctrl-C stops)"
            + (
                f" [tracing {args.trace_sample_rate:g} sampled]"
                if args.trace_sample_rate
                else ""
            ),
            file=sys.stderr,
        )

    run_server(service, args.host, args.port, announce=announce)
    return 0


def _add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", required=True, metavar="DIR", help="model artifact store directory (see export-model)"
    )
    parser.add_argument(
        "--model",
        metavar="ARTIFACT",
        help="artifact name to stream against (default: the store's only artifact)",
    )
    parser.add_argument(
        "--engine",
        default="incremental",
        choices=["incremental", "naive"],
        help="incremental carries window/cube/feature state across hops; "
        "naive recomputes every window (the parity oracle; default: incremental)",
    )
    parser.add_argument(
        "--hop", type=int, default=1, metavar="N", help="emit one result every N new samples (default: 1)"
    )
    parser.add_argument(
        "--k",
        type=int,
        metavar="K",
        help="dCAM permutations per window (default: the artifact's default_k, else 20)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="dCAM permutation seed, fixed per session (default: 0)"
    )
    parser.add_argument(
        "--explain",
        default="auto",
        choices=["auto", "none"],
        help="auto explains with the model's family (dCAM/CAM); none classifies only (default: auto)",
    )
    parser.add_argument(
        "--explain-class",
        type=int,
        metavar="C",
        help="pin the explained class (default: each window's predicted class)",
    )
    parser.add_argument(
        "--input",
        metavar="FILE.npy",
        help="stream a saved (D, T) float array instead of synthetic noise",
    )
    parser.add_argument(
        "--samples",
        type=int,
        metavar="T",
        help="synthetic stream length in timesteps (default: 2x the model's window)",
    )
    parser.add_argument(
        "--stream-seed", type=int, default=0, help="synthetic stream RNG seed (default: 0)"
    )
    parser.add_argument(
        "--chunk", type=int, default=16, metavar="M", help="push block size in timesteps (default: 16)"
    )
    parser.add_argument(
        "--json-lines",
        action="store_true",
        help="print one JSON object per emission on stdout (heatmap summarised, not inlined)",
    )
    parser.add_argument(
        "--heatmaps", metavar="FILE.npz", help="save every emitted heatmap into one .npz archive"
    )


def _command_stream(args: argparse.Namespace) -> int:
    import numpy as np

    from ..serve.store import ModelArtifactStore
    from ..stream import StreamConfig, StreamSession

    store = ModelArtifactStore(args.store)
    names = store.list_names()
    if not names:
        print(
            f"error: no model artifacts in {args.store!r}; register one with "
            "`python -m repro export-model` first",
            file=sys.stderr,
        )
        return 2
    if args.model is None:
        if len(names) > 1:
            print(
                f"error: store has {len(names)} artifacts ({', '.join(names)}); pick one with --model",
                file=sys.stderr,
            )
            return 2
        name = names[0]
    elif args.model in names:
        name = args.model
    else:
        print(
            f"error: unknown artifact {args.model!r}; store has: {', '.join(names)}",
            file=sys.stderr,
        )
        return 2
    artifact = store.artifact(name)
    model = store.load(name)
    k = args.k if args.k is not None else int(artifact.metadata.get("default_k", 20))
    config = StreamConfig(
        hop=args.hop,
        engine=args.engine,
        explain=args.explain,
        k=k,
        seed=args.seed,
        explain_class=args.explain_class,
    )
    session = StreamSession(model, config, state_hash=artifact.state_hash)

    if args.input:
        feed = np.load(args.input)
        if feed.ndim != 2 or feed.shape[0] != model.n_dimensions:
            print(
                f"error: {args.input} has shape {feed.shape}, expected "
                f"({model.n_dimensions}, T)",
                file=sys.stderr,
            )
            return 2
        feed = np.asarray(feed, dtype=np.float64)
    else:
        total = args.samples if args.samples is not None else 2 * model.length
        rng = np.random.default_rng(args.stream_seed)
        feed = rng.standard_normal((model.n_dimensions, total))

    print(
        f"[repro] streaming {feed.shape[1]} samples (D={model.n_dimensions}) through "
        f"{name!r} [{session.engine} engine, window {session.window}, hop {config.hop}"
        + (f", {session.family} x k={k}" if session.family == "dcam" else f", {session.family}")
        + "]",
        file=sys.stderr,
    )
    start = time.perf_counter()
    results = []
    for offset in range(0, feed.shape[1], args.chunk):
        results.extend(session.push(feed[:, offset : offset + args.chunk]))
    elapsed = time.perf_counter() - start
    for result in results:
        if args.json_lines:
            record = {
                "index": result.index,
                "t_start": result.t_start,
                "t_end": result.t_end,
                "predicted": result.predicted,
                "logits": [float(v) for v in result.logits],
                "engine": result.engine,
            }
            if result.class_id is not None:
                record["class_id"] = result.class_id
                record["heatmap_shape"] = list(result.heatmap.shape)
                record["heatmap_max"] = float(result.heatmap.max())
            if result.success_ratio is not None:
                record["success_ratio"] = result.success_ratio
            print(json.dumps(record))
    if args.heatmaps:
        explained = {f"window_{r.index:05d}": r.heatmap for r in results if r.heatmap is not None}
        np.savez(args.heatmaps, **explained)
        print(f"[repro] {len(explained)} heatmap(s) written to {args.heatmaps}", file=sys.stderr)
    stats = session.stats
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    print(
        f"[repro] {len(results)} emission(s) in {elapsed:.2f}s ({rate:.1f}/s) — "
        f"cold starts {stats['cold_starts']}, incremental hops {stats['incremental_hops']}, "
        f"cam rebuilds {stats['cam_rebuilds']}",
        file=sys.stderr,
    )
    return 0


def _add_byte_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=7070, help="bind port; 0 picks an ephemeral port (default: 7070)"
    )
    parser.add_argument(
        "--dir", dest="directory", metavar="DIR", help="persist blobs here (memory-only otherwise)"
    )
    parser.add_argument(
        "--memory-mb",
        type=float,
        default=256.0,
        metavar="MB",
        help="LRU bound of the in-memory tier (default: 256)",
    )
    parser.add_argument(
        "--disk-mb",
        type=float,
        metavar="MB",
        help="LRU bound of the on-disk tier (default: unbounded)",
    )
    parser.add_argument(
        "--max-payload-mb",
        type=float,
        metavar="MB",
        help="largest frame payload the server buffers per connection; the "
        "protocol is unauthenticated, so keep it near your largest real "
        "blob (default: 256)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="serve /metrics (JSON or Prometheus text) and /trace for this "
        "process on 127.0.0.1:PORT; 0 picks an ephemeral port "
        "(default: no metrics endpoint)",
    )


def _command_byte_store_server(args: argparse.Namespace) -> int:
    from ..dist import ByteStoreServer

    server = ByteStoreServer(
        host=args.host,
        port=args.port,
        directory=args.directory,
        max_memory_bytes=int(args.memory_mb * 1024 * 1024),
        max_disk_bytes=None if args.disk_mb is None else int(args.disk_mb * 1024 * 1024),
        max_payload_bytes=(
            None if args.max_payload_mb is None else int(args.max_payload_mb * 1024 * 1024)
        ),
    )
    metrics_server = _start_metrics_sidecar(args, server.wire.telemetry, server.wire.tracer)
    print(
        f"[repro] byte-store server listening on {server.address}"
        + (f" (dir {args.directory})" if args.directory else " (memory-only)")
        + " — point clients at it with --remote-store; Ctrl-C stops",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("[repro] byte-store server stopping", file=sys.stderr)
        server.close()
    finally:
        if metrics_server is not None:
            metrics_server.close()
    return 0


def _start_metrics_sidecar(args: argparse.Namespace, telemetry, tracer):
    """Start the /metrics + /trace HTTP sidecar when ``--metrics-port`` was given."""
    if getattr(args, "metrics_port", None) is None:
        return None
    from ..obs import MetricsHTTPServer

    sidecar = MetricsHTTPServer(telemetry, tracer=tracer, port=args.metrics_port).start()
    print(
        f"[repro] metrics endpoint on http://{sidecar.address} (/metrics /trace /healthz)",
        file=sys.stderr,
    )
    return sidecar


def _add_worker_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="fleet coordinator address (printed by `repro run --executor fleet`)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="local result-cache directory for unit dedupe (shared via --remote-store)",
    )
    parser.add_argument(
        "--remote-store",
        metavar="HOST:PORT",
        help="shared remote byte-store tier behind the worker's result cache",
    )
    parser.add_argument(
        "--provider",
        action="append",
        default=[],
        metavar="MODULE",
        help="extra module to import before serving (registers work kinds); repeatable",
    )
    parser.add_argument(
        "--worker-id", metavar="ID", help="lease/heartbeat identity (default: hostname-pid)"
    )
    parser.add_argument(
        "--poll-interval-s",
        type=float,
        default=0.2,
        metavar="S",
        help="idle re-poll delay when the queue is empty (default: 0.2)",
    )
    parser.add_argument(
        "--max-idle-s",
        type=float,
        metavar="S",
        help="exit after this long without work (default: wait for the coordinator to drain)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="serve /metrics (JSON or Prometheus text) and /trace for this "
        "worker on 127.0.0.1:PORT; 0 picks an ephemeral port "
        "(default: no metrics endpoint)",
    )


def _command_worker(args: argparse.Namespace) -> int:
    from ..dist.worker import default_worker_id, run_worker
    from ..obs.tracing import Tracer
    from ..telemetry import Telemetry

    cache = (
        ResultCache(directory=args.cache_dir, remote=_remote_store(args.remote_store))
        if args.cache_dir or args.remote_store
        else None
    )
    worker_id = args.worker_id or default_worker_id()
    telemetry = Telemetry()
    tracer = Tracer(sample_rate=0.0, process=f"worker:{worker_id}")
    metrics_server = _start_metrics_sidecar(args, telemetry, tracer)
    print(
        f"[repro] worker connecting to {args.connect}"
        + (f" cache={args.cache_dir}" if args.cache_dir else "")
        + (f" remote-store={args.remote_store}" if args.remote_store else ""),
        file=sys.stderr,
    )
    try:
        completed = run_worker(
            args.connect,
            cache=cache,
            providers=args.provider,
            worker_id=worker_id,
            poll_interval_s=args.poll_interval_s,
            max_idle_s=args.max_idle_s,
            telemetry=telemetry,
            tracer=tracer,
        )
    except KeyboardInterrupt:
        print("[repro] worker interrupted", file=sys.stderr)
        return 130
    finally:
        if metrics_server is not None:
            metrics_server.close()
    print(f"[repro] worker done: {completed} unit(s) completed", file=sys.stderr)
    return 0


def _add_trace_dump_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        metavar="http://HOST:PORT",
        help="base URL of a serving host or metrics sidecar; spans are "
        "fetched from its /trace endpoint",
    )
    source.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="wire-protocol address of a byte-store server or fleet "
        "coordinator; spans are fetched via the trace-dump op",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the JSONL export here instead of stdout",
    )


def _command_trace_dump(args: argparse.Namespace) -> int:
    import json as _json

    if args.url:
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/trace"
        try:
            with urlopen(url, timeout=10.0) as response:
                payload = _json.loads(response.read().decode("utf-8"))
        except (OSError, ValueError) as error:
            print(f"error: could not fetch {url}: {error}", file=sys.stderr)
            return 2
        spans = payload.get("spans", [])
    else:
        from ..dist.client import RemoteStoreConfig, RemoteUnavailableError, WireClient

        client = WireClient(RemoteStoreConfig(address=args.connect, retries=0))
        try:
            header, _ = client.request({"op": "trace-dump"})
        except RemoteUnavailableError as error:
            print(f"error: could not reach {args.connect}: {error}", file=sys.stderr)
            return 2
        finally:
            client.close()
        spans = header.get("spans", [])
    lines = "".join(_json.dumps(span, sort_keys=True) + "\n" for span in spans)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines)
        print(f"[repro] wrote {len(spans)} span(s) to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(lines)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="dCAM reproduction experiment suite (declarative job-graph runtime).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list the runnable experiments")
    run_parser = subparsers.add_parser(
        "run",
        help="run one experiment",
        description="Run one table/figure driver through the repro.runtime executor.",
    )
    _add_run_arguments(run_parser)
    export_parser = subparsers.add_parser(
        "export-model",
        help="train (or load) a model and register it for serving",
        description="Train one classifier on the synthetic benchmark — or load "
        "its state from the runtime result cache — and register it "
        "into a serve model store.",
    )
    _add_export_arguments(export_parser)
    serve_parser = subparsers.add_parser(
        "serve",
        help="serve classify/explain requests over HTTP",
        description="Serve the models of an artifact store with dynamic "
        "micro-batching and a content-addressed explanation cache.",
    )
    _add_serve_arguments(serve_parser)
    stream_parser = subparsers.add_parser(
        "stream",
        help="replay a feed through a streaming explanation session",
        description="Push a (D, T) feed — synthetic noise or a saved .npy — "
        "through a repro.stream.StreamSession, emitting one "
        "classification + CAM/dCAM heatmap per window hop.",
    )
    _add_stream_arguments(stream_parser)
    byte_store_parser = subparsers.add_parser(
        "byte-store-server",
        help="serve the shared remote byte-store tier",
        description="Run the reference remote byte-store server every cache "
        "and artifact store can point at via --remote-store. "
        "Unauthenticated: bind only on trusted networks.",
    )
    _add_byte_store_arguments(byte_store_parser)
    worker_parser = subparsers.add_parser(
        "worker",
        help="pull and execute fleet work units",
        description="Run one fleet worker against a `repro run --executor "
        "fleet` coordinator: lease units, dedupe against the "
        "(optionally remote-backed) result cache, execute, report.",
    )
    _add_worker_arguments(worker_parser)
    trace_dump_parser = subparsers.add_parser(
        "trace-dump",
        help="export collected trace spans as JSONL",
        description="Fetch the span ring of a serving host (--url, HTTP "
        "/trace) or of a wire-protocol server (--connect, the "
        "trace-dump op) and emit one JSON span per line.",
    )
    _add_trace_dump_arguments(trace_dump_parser)

    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "export-model":
        return _command_export_model(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "stream":
        return _command_stream(args)
    if args.command == "byte-store-server":
        return _command_byte_store_server(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "trace-dump":
        return _command_trace_dump(args)
    return _command_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
