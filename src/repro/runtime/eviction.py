"""LRU-bounded byte-store tiers shared by the runtime and serving caches.

Both content-addressed stores of the repo — the runtime
:class:`~repro.runtime.cache.ResultCache` and the serving
:class:`~repro.serve.cache.ExplanationCache` — persist entries as one file per
key inside a flat directory.  This module owns the mechanics they share:

* :class:`BoundedMemoryStore` — an ``OrderedDict``-backed byte store with a
  total-size bound, evicting least-recently-used entries;
* :func:`enforce_disk_budget` — trim a directory of entry files to a byte
  budget by deleting the least-recently-*used* files (recency is file mtime;
  readers bump it via :func:`touch`);
* :class:`TieredByteStore` — the tiers combined: a memory tier in front of an
  optional directory tier and an optional *remote* tier (a
  :class:`repro.dist.RemoteByteStore` shared by a whole fleet), torn-file-safe
  writes, promote-on-hit from the slower tiers, local tiers LRU-bounded.  The
  caches wrap it with their own policy (pickle + hit/miss stats for the
  runtime, telemetry counters for serving).

Eviction is size-triggered, never time-triggered, so a store below its budget
behaves exactly like the unbounded caches these helpers replaced.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple


class BoundedMemoryStore:
    """LRU-ordered ``{key: bytes}`` store bounded by total payload size.

    ``max_bytes=None`` disables eviction (the store behaves like a plain
    dict).  A single entry larger than the whole budget is still admitted —
    the bound is a working-set target, not an admission filter — and then
    evicted as soon as any other entry lands.

    Thread-safe: the serving layer's cache shares one store between HTTP
    handler threads and the batcher worker, so the recency bump in ``get``
    and the evicting ``put`` are serialised by a lock (an unguarded
    ``get``/``move_to_end`` pair races a concurrent eviction).
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.Lock()
        self.evictions = 0

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
            return blob

    def put(self, key: str, blob: bytes) -> None:
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._total_bytes -= len(previous)
            self._entries[key] = blob
            self._total_bytes += len(blob)
            if self.max_bytes is not None:
                while self._total_bytes > self.max_bytes and len(self._entries) > 1:
                    _, evicted = self._entries.popitem(last=False)
                    self._total_bytes -= len(evicted)
                    self.evictions += 1

    def discard(self, key: str) -> None:
        with self._lock:
            blob = self._entries.pop(key, None)
            if blob is not None:
                self._total_bytes -= len(blob)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._entries))

    @property
    def total_bytes(self) -> int:
        return self._total_bytes


def touch(path: str) -> None:
    """Bump ``path``'s mtime so LRU eviction sees the read (best-effort)."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def _entry_files(directory: str, suffix: str) -> List[Tuple[float, int, str]]:
    """``(mtime, size, path)`` for every entry file, least recent first."""
    entries = []
    for name in os.listdir(directory):
        if not name.endswith(suffix):
            continue
        path = os.path.join(directory, name)
        try:
            stat = os.stat(path)
        except OSError:
            continue  # concurrently evicted by another process
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()
    return entries


def enforce_disk_budget(directory: str, max_bytes: Optional[int], suffix: str = ".pkl") -> int:
    """Delete least-recently-used ``suffix`` files until the directory fits.

    Returns the number of files evicted.  The most recent file always
    survives, mirroring :class:`BoundedMemoryStore`'s single-entry admission.
    Concurrent deletions by other processes are tolerated.
    """
    if max_bytes is None or not os.path.isdir(directory):
        return 0
    entries = _entry_files(directory, suffix)
    total = sum(size for _, size, _ in entries)
    evicted = 0
    for _, size, path in entries[:-1]:  # keep the newest entry
        if total <= max_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        evicted += 1
    return evicted


class TieredByteStore:
    """Memory tier (+ optional disk and remote tiers) with LRU bounds.

    ``get`` falls back to disk on a memory miss — promoting the entry back
    into memory and bumping the file's mtime — and then to the optional
    *remote* tier (any object with ``get``/``put``/``contains``, typically a
    :class:`repro.dist.RemoteByteStore`); a remote hit is materialised into
    both local tiers so subsequent reads never touch the network.  ``put``
    writes memory-first, then the file via write-then-rename so concurrent
    readers never see a torn entry, then write-through to the remote
    (best-effort: a down remote never fails a local write), and finally
    enforces the disk budget.  ``evictions`` counts both local tiers.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        suffix: str = ".pkl",
        max_memory_bytes: Optional[int] = None,
        max_disk_bytes: Optional[int] = None,
        remote: Optional[object] = None,
    ) -> None:
        self.directory = directory
        self.suffix = suffix
        self.max_disk_bytes = max_disk_bytes
        self.remote = remote
        self.memory = BoundedMemoryStore(max_memory_bytes)
        self.disk_evictions = 0
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Disk sweeps walk the whole directory (O(entries) stat calls), so a
        # sweep per put would make a busy cache quadratic.  Track the size
        # approximately — puts add, sweeps resync to the real total — and
        # sweep only when the estimate crosses the budget.  External
        # deletions only make the estimate overshoot, i.e. sweep early.
        self._approx_disk_bytes = (
            sum(size for _, size, _ in _entry_files(directory, suffix))
            if directory and max_disk_bytes is not None
            else 0
        )

    def path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}{self.suffix}")

    def get(self, key: str) -> Optional[bytes]:
        return self.get_with_tier(key)[0]

    def get_with_tier(self, key: str) -> Tuple[Optional[bytes], str]:
        """``(blob, tier)`` where tier is the serving one: ``"memory"`` /
        ``"disk"`` / ``"remote"`` on a hit, ``"miss"`` otherwise — the
        observability layer records per-tier hit latency from this."""
        blob = self.memory.get(key)
        if blob is not None:
            return blob, "memory"
        if self.directory:
            path = self.path(key)
            try:  # a torn/evicted-underneath-us file is a miss, not a crash
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None
            else:
                touch(path)
                self.memory.put(key, blob)
                return blob, "disk"
        if self.remote is not None:
            blob = self.remote.get(key)
            if blob is not None:  # promote so the next read stays local
                self.memory.put(key, blob)
                self._store_disk(key, blob)
                return blob, "remote"
        return None, "miss"

    def put(self, key: str, blob: bytes) -> None:
        self.memory.put(key, blob)
        self._store_disk(key, blob)
        if self.remote is not None:
            self.remote.put(key, blob)  # best-effort write-through

    def invalidate(self, key: str) -> None:
        """Drop ``key`` from the local tiers (e.g. a blob that failed to parse).

        The remote tier is left alone: its frames are checksum-verified in
        transit, so local corruption says nothing about the remote copy — the
        next ``get`` re-fetches and re-materialises it.
        """
        self.memory.discard(key)
        if self.directory:
            try:
                os.unlink(self.path(key))
            except OSError:
                pass

    def _store_disk(self, key: str, blob: bytes) -> None:
        if not self.directory:
            return
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, self.path(key))
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        if self.max_disk_bytes is not None:
            self._approx_disk_bytes += len(blob)
            if self._approx_disk_bytes > self.max_disk_bytes:
                self.disk_evictions += enforce_disk_budget(
                    self.directory, self.max_disk_bytes, suffix=self.suffix
                )
                self._approx_disk_bytes = sum(
                    size for _, size, _ in _entry_files(self.directory, self.suffix)
                )

    @property
    def evictions(self) -> int:
        return self.memory.evictions + self.disk_evictions

    def __contains__(self, key: str) -> bool:
        if key in self.memory:
            return True
        if bool(self.directory) and os.path.exists(self.path(key)):
            return True
        return self.remote is not None and self.remote.contains(key)

    def __len__(self) -> int:
        keys = set(self.memory)
        if self.directory:
            keys.update(
                name[: -len(self.suffix)]
                for name in os.listdir(self.directory)
                if name.endswith(self.suffix)
            )
        return len(keys)
