"""Content-addressed result cache for work units.

Results are keyed by the unit fingerprint (SHA-256 over the experiment scale,
the work kind and the unit parameters — see
:func:`repro.runtime.spec.unit_fingerprint`) and stored as pickle blobs, in
memory and optionally on disk.  Storing the *bytes* rather than the live
object keeps hits byte-identical to cold runs and immune to accidental
mutation of a previously returned result.

Because the fingerprint covers everything that determines a result, drivers
that share a protocol share entries: Figure 9 re-running the Table 3 sweep
through the same cache performs no training at all.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss counters (reset with :meth:`ResultCache.reset_stats`)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


@dataclass
class ResultCache:
    """In-memory (and optionally on-disk) content-addressed result store.

    Parameters
    ----------
    directory:
        If given, every entry is also persisted as
        ``<directory>/<fingerprint>.pkl`` and lookups fall back to disk, so
        the cache survives across processes and CLI invocations.
    """

    directory: Optional[str] = None
    _memory: Dict[str, bytes] = field(default_factory=dict, repr=False)
    stats: CacheStats = field(default_factory=CacheStats, repr=False)

    def __post_init__(self) -> None:
        if self.directory:
            os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get_blob(self, key: str) -> Optional[bytes]:
        """The stored pickle bytes for ``key`` (None on miss); counts stats."""
        blob = self._memory.get(key)
        if blob is None and self.directory:
            path = self._path(key)
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    blob = handle.read()
                self._memory[key] = blob
        if blob is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return blob

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, result)`` for ``key``; the result is a fresh unpickle."""
        blob = self.get_blob(key)
        if blob is None:
            return False, None
        return True, pickle.loads(blob)

    def store(self, key: str, result: Any) -> bytes:
        """Pickle ``result`` under ``key``; returns the stored bytes."""
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._memory[key] = blob
        if self.directory:
            # Write-then-rename so concurrent CLI runs never read a torn file.
            fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, self._path(key))
            finally:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
        self.stats.stores += 1
        return blob

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return bool(self.directory) and os.path.exists(self._path(key))

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory:
            keys.update(name[:-len(".pkl")] for name in os.listdir(self.directory)
                        if name.endswith(".pkl"))
        return len(keys)

    def reset_stats(self) -> None:
        self.stats = CacheStats()
