"""Content-addressed result cache for work units.

Results are keyed by the unit fingerprint (SHA-256 over the experiment scale,
the work kind and the unit parameters — see
:func:`repro.runtime.spec.unit_fingerprint`) and stored as pickle blobs, in
memory and optionally on disk.  Storing the *bytes* rather than the live
object keeps hits byte-identical to cold runs and immune to accidental
mutation of a previously returned result.

Because the fingerprint covers everything that determines a result, drivers
that share a protocol share entries: Figure 9 re-running the Table 3 sweep
through the same cache performs no training at all.

Both tiers are optionally size-bounded with least-recently-used eviction
(``max_memory_bytes`` / ``max_disk_bytes``) via the shared
:class:`~repro.runtime.eviction.TieredByteStore` (the serving layer's
explanation cache runs on the same store); the defaults keep the historical
unbounded behaviour.  Disk recency is file mtime, bumped on every hit, so
long-running fleets sharing one ``--cache-dir`` retain their hot working set.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from .eviction import TieredByteStore


@dataclass
class CacheStats:
    """Hit/miss counters (reset with :meth:`ResultCache.reset_stats`)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


@dataclass
class ResultCache:
    """In-memory (and optionally on-disk) content-addressed result store.

    Parameters
    ----------
    directory:
        If given, every entry is also persisted as
        ``<directory>/<fingerprint>.pkl`` and lookups fall back to disk, so
        the cache survives across processes and CLI invocations.
    max_memory_bytes:
        Optional bound on the in-memory tier; least-recently-used entries are
        dropped (they remain on disk when a directory is configured).
    max_disk_bytes:
        Optional bound on the disk tier; least-recently-used entry files are
        deleted after every store.  ``None`` (the default) never evicts.
    remote:
        Optional remote byte-store tier (a :class:`repro.dist.RemoteByteStore`)
        consulted after both local tiers miss and written through on store,
        so a whole fleet shares one content-addressed result namespace.
    """

    directory: Optional[str] = None
    max_memory_bytes: Optional[int] = None
    max_disk_bytes: Optional[int] = None
    remote: Optional[Any] = None
    _store: TieredByteStore = field(default=None, repr=False)  # type: ignore[assignment]
    stats: CacheStats = field(default_factory=CacheStats, repr=False)

    def __post_init__(self) -> None:
        self._store = TieredByteStore(
            directory=self.directory,
            suffix=".pkl",
            max_memory_bytes=self.max_memory_bytes,
            max_disk_bytes=self.max_disk_bytes,
            remote=self.remote,
        )

    def get_blob(self, key: str) -> Optional[bytes]:
        """The stored pickle bytes for ``key`` (None on miss); counts stats."""
        blob = self._store.get(key)
        if blob is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return blob

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, result)`` for ``key``; the result is a fresh unpickle.

        A blob that fails to unpickle (torn disk write survived by a crash,
        bit rot) is treated as a miss: the corrupt entry is dropped from the
        local tiers so the unit re-executes and overwrites it.
        """
        blob = self.get_blob(key)
        if blob is None:
            return False, None
        try:
            return True, pickle.loads(blob)
        except Exception:
            self.stats.corrupt += 1
            self.stats.hits -= 1
            self.stats.misses += 1
            self._store.invalidate(key)
            return False, None

    def store(self, key: str, result: Any) -> bytes:
        """Pickle ``result`` under ``key``; returns the stored bytes."""
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._store.put(key, blob)
        self.stats.stores += 1
        return blob

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def reset_stats(self) -> None:
        self.stats = CacheStats()
