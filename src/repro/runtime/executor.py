"""Executors: the strategy deciding *where* work units are evaluated.

The :class:`Executor` protocol is a single order-preserving ``map``.  Two
implementations ship:

* :class:`SerialExecutor` — in-process, zero overhead, the default; and
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out over the embarrassingly parallel (dataset, model, seed) cells.

Because every work unit derives its RNGs from its own parameters (never from
shared mutable state), the two executors produce bit-identical results; the
test suite asserts exact float equality between them.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Iterable, Iterator, List, Optional

from typing import Protocol, runtime_checkable


@runtime_checkable
class Executor(Protocol):
    """Anything with an order-preserving ``map(fn, payloads)``."""

    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> List[Any]:
        ...  # pragma: no cover


class SerialExecutor:
    """Evaluate payloads one after the other in the calling process."""

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        """Ordered lazy results — lets callers act on each one as it lands."""
        for payload in payloads:
            yield fn(payload)

    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, payloads))

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _package_search_path() -> str:
    """Directory that makes ``import repro`` work (the ``src`` checkout dir)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _worker_init(search_path: str) -> None:
    """Pool initializer: make the package importable under spawn-style starts."""
    if search_path not in sys.path:
        sys.path.insert(0, search_path)


class ParallelExecutor:
    """Process-pool execution of independent work units.

    Parameters
    ----------
    workers:
        Worker process count (defaults to the machine's CPU count).  Values
        ``<= 1`` degrade gracefully to serial in-process execution.
    chunksize:
        Payloads handed to a worker per dispatch; 1 (the default) gives the
        best load balance for the coarse train+evaluate units this runtime
        schedules.
    """

    def __init__(self, workers: Optional[int] = None, chunksize: int = 1):
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.chunksize = chunksize

    def imap(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> Iterator[Any]:
        """Ordered results, yielded as the pool completes them in order."""
        payloads = list(payloads)
        n_workers = min(self.workers, len(payloads))
        if n_workers <= 1:
            yield from SerialExecutor().imap(fn, payloads)
            return
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=n_workers, initializer=_worker_init, initargs=(_package_search_path(),)
        ) as pool:
            yield from pool.map(fn, payloads, chunksize=self.chunksize)

    def map(self, fn: Callable[[Any], Any], payloads: Iterable[Any]) -> List[Any]:
        return list(self.imap(fn, payloads))

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"


def make_executor(workers: Optional[int]) -> Executor:
    """``workers`` CLI knob → executor (``None``/0/1 → serial)."""
    if workers and workers > 1:
        return ParallelExecutor(workers=workers)
    return SerialExecutor()


def executor_label(executor: Executor) -> str:
    """Short description used in logs and benchmark records."""
    label = getattr(executor, "label", None)  # e.g. FleetExecutor's "fleet[host:port]"
    if isinstance(label, str):
        return label
    if isinstance(executor, ParallelExecutor):
        return f"parallel[{executor.workers}]"
    return "serial"


__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "executor_label",
]
