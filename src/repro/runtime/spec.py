"""Declarative descriptions of experiment work: :class:`WorkUnit` / :class:`ExperimentSpec`.

A :class:`WorkUnit` is a frozen, picklable, hashable description of one
self-contained cell of an experiment — typically "generate this dataset,
train this model with this derived seed, measure these metrics".  Because a
unit carries *everything* that determines its result (the work kind plus a
canonicalized parameter mapping) it can be

* shipped to a worker process by the parallel executor,
* fingerprinted (together with the :class:`~repro.experiments.config.ExperimentScale`
  it runs under) into a content-addressed cache key, and
* compared across drivers: Figure 9 emits the *same* units as Table 3, so a
  shared :class:`~repro.runtime.cache.ResultCache` turns its sweep into hits.

An :class:`ExperimentSpec` bundles an ordered tuple of units with the scale
they run under; :func:`repro.runtime.run` evaluates one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple


def canonicalize(value: Any) -> Any:
    """Normalize ``value`` into the hashable canonical form used by work units.

    Sequences become tuples, mappings become sorted ``(key, value)`` tuples
    (tagged so they round-trip through :func:`decanonicalize`), dataclasses
    are converted via :func:`dataclasses.asdict`, NumPy scalars collapse to
    Python scalars.  Anything else (arrays, models, ...) is rejected: a work
    unit must stay a *description*, never a payload.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if getattr(value, "ndim", None) == 0 and hasattr(value, "item"):
        return canonicalize(value.item())  # NumPy scalar (or 0-d array)
    if isinstance(value, (list, tuple)):
        return tuple(canonicalize(item) for item in value)
    if isinstance(value, dict):
        return ("__mapping__",) + tuple(
            (str(key), canonicalize(value[key])) for key in sorted(value, key=str)
        )
    raise TypeError(
        f"work-unit parameters must be JSON-like scalars/sequences/mappings, "
        f"got {type(value).__name__}"
    )


def decanonicalize(value: Any) -> Any:
    """Invert :func:`canonicalize` (tuples stay tuples, tagged mappings → dict)."""
    if isinstance(value, tuple):
        if len(value) >= 1 and value[0] == "__mapping__":
            return {key: decanonicalize(item) for key, item in value[1:]}
        return tuple(decanonicalize(item) for item in value)
    return value


def _jsonable(value: Any) -> Any:
    """Canonical form → deterministic JSON-encodable structure."""
    if isinstance(value, tuple):
        if len(value) >= 1 and value[0] == "__mapping__":
            return {key: _jsonable(item) for key, item in value[1:]}
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class WorkUnit:
    """One self-contained train+evaluate cell of an experiment.

    ``kind`` names a work function registered with
    :func:`repro.runtime.registry.register_work`; ``params`` is the
    canonicalized, sorted ``(name, value)`` parameter tuple passed to it.
    Use :meth:`create` rather than the raw constructor.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, kind: str, **params: Any) -> "WorkUnit":
        canonical = tuple(sorted((name, canonicalize(value)) for name, value in params.items()))
        return cls(kind=kind, params=canonical)

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The parameters as keyword arguments for the work function."""
        return {name: decanonicalize(value) for name, value in self.params}

    def describe(self) -> str:
        """Compact human-readable label (used by CLI progress output)."""
        parts = ", ".join(f"{name}={value!r}" for name, value in self.params)
        return f"{self.kind}({parts})"


@dataclass(frozen=True)
class ExperimentSpec:
    """An ordered collection of work units plus the scale they run under."""

    name: str
    scale: Any  # ExperimentScale (duck-typed: any dataclass of knobs works)
    units: Tuple[WorkUnit, ...] = ()

    def __len__(self) -> int:
        return len(self.units)

    def fingerprints(self) -> Tuple[str, ...]:
        """Content-addressed cache key of every unit under this spec's scale."""
        scale_key = scale_fingerprint_payload(self.scale)
        return tuple(unit_fingerprint(self.scale, unit, _scale_payload=scale_key) for unit in self.units)


#: Folded into every unit fingerprint.  Bump whenever a work function's
#: numerics change (different training math, different defaulted parameters,
#: ...): the fingerprint only covers the *description* of a unit, not the
#: code evaluating it, so without a bump a persisted cache would replay
#: results from the old implementation.
CACHE_SCHEMA_VERSION = "1"


def scale_fingerprint_payload(scale: Any) -> str:
    """Deterministic JSON encoding of a scale dataclass (or knob bundle)."""
    if dataclasses.is_dataclass(scale) and not isinstance(scale, type):
        payload = dataclasses.asdict(scale)
    else:  # duck-typed knob bundles: hash their public attributes
        payload = {name: getattr(scale, name) for name in sorted(vars(scale)) if not name.startswith("_")}
    return json.dumps(_jsonable(canonicalize(payload)), sort_keys=True)


def unit_fingerprint(scale: Any, unit: WorkUnit, *, _scale_payload: str = None) -> str:
    """SHA-256 fingerprint of (schema version, scale, kind, params).

    Everything that *describes* a unit's result is folded in: the full scale
    (model widths, training config, dataset configs, seeds policy), the work
    kind and the unit parameters (which carry the derived per-unit seeds).
    The work function's *implementation* cannot be hashed, so
    :data:`CACHE_SCHEMA_VERSION` stands in for it — bump it when numerics
    change, or stale persisted caches will replay old results.
    """
    scale_payload = _scale_payload or scale_fingerprint_payload(scale)
    body = json.dumps(
        {"kind": unit.kind, "params": _jsonable(unit.params)},
        sort_keys=True,
    )
    digest = hashlib.sha256()
    digest.update(CACHE_SCHEMA_VERSION.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(scale_payload.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(body.encode("utf-8"))
    return digest.hexdigest()
