"""Registry mapping :class:`~repro.runtime.spec.WorkUnit` kinds to work functions.

A *work function* takes ``(scale, **unit.kwargs)`` and returns a picklable
result (a dict of metrics, a float, or a result dataclass).  Work functions
are registered by the layer that owns the experiment logic (see
:mod:`repro.experiments.units`); the runtime layer stays generic and only
knows how to look kinds up and invoke them — including inside worker
processes, where :func:`execute_unit` lazily imports the provider modules so
the registry is populated under any multiprocessing start method.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Tuple

from .spec import WorkUnit

WorkFunction = Callable[..., Any]

WORK_FUNCTIONS: Dict[str, WorkFunction] = {}

#: Modules imported on demand when an unknown kind is requested (they register
#: their work functions at import time).  Extend via :func:`register_provider`.
WORK_PROVIDERS: List[str] = ["repro.experiments.units"]


def register_work(kind: str) -> Callable[[WorkFunction], WorkFunction]:
    """Class the decorated function as the work function for ``kind``."""

    def decorator(fn: WorkFunction) -> WorkFunction:
        if kind in WORK_FUNCTIONS and WORK_FUNCTIONS[kind] is not fn:
            raise ValueError(f"work kind {kind!r} is already registered")
        WORK_FUNCTIONS[kind] = fn
        return fn

    return decorator


def register_provider(module_name: str) -> None:
    """Record a module that registers work functions when imported."""
    if module_name not in WORK_PROVIDERS:
        WORK_PROVIDERS.append(module_name)


def resolve_work(kind: str) -> WorkFunction:
    """Look up the work function for ``kind``, importing providers if needed."""
    fn = WORK_FUNCTIONS.get(kind)
    if fn is None:
        for module_name in list(WORK_PROVIDERS):
            importlib.import_module(module_name)
        fn = WORK_FUNCTIONS.get(kind)
    if fn is None:
        raise KeyError(f"unknown work kind {kind!r}; registered: {sorted(WORK_FUNCTIONS)}")
    return fn


def execute_unit(scale: Any, unit: WorkUnit) -> Any:
    """Evaluate one work unit under ``scale`` and return its result."""
    return resolve_work(unit.kind)(scale, **unit.kwargs)


def execute_payload(payload: Tuple[Any, WorkUnit]) -> Any:
    """Module-level single-argument entry point (picklable for executors)."""
    scale, unit = payload
    return execute_unit(scale, unit)
