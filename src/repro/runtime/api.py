"""The ``repro.run`` facade: evaluate an :class:`ExperimentSpec`.

``run(spec)`` is the single entry point every experiment driver goes
through.  It resolves cached units, fans the misses out through the chosen
executor (serial by default, a process pool via
:class:`~repro.runtime.executor.ParallelExecutor`) and returns results in
unit order, so a driver is just a spec-builder plus a result-assembler.

Long sweeps can observe progress through two hooks: a shared
:class:`~repro.telemetry.Telemetry` registry (unit counters plus the total
execution wall clock — the same primitive the serving layer's ``/metrics``
endpoint renders) and an ``on_unit`` callback fired as every unit resolves,
cached or executed.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Any, Iterator, List, Optional, Tuple

from ..telemetry import ProgressHook, Telemetry
from .cache import ResultCache
from .executor import Executor, SerialExecutor
from .registry import execute_payload
from .spec import ExperimentSpec

#: Ambient (telemetry, on_unit) hooks installed by :func:`progress_hooks`.
_AMBIENT_HOOKS: "contextvars.ContextVar[Tuple[Optional[Telemetry], Optional[ProgressHook]]]" = (
    contextvars.ContextVar("repro_run_hooks", default=(None, None))
)


@contextlib.contextmanager
def progress_hooks(
    telemetry: Optional[Telemetry] = None,
    on_unit: Optional[ProgressHook] = None,
) -> Iterator[None]:
    """Install ambient hooks picked up by every :func:`run` in the block.

    The experiment drivers call :func:`run` internally without exposing its
    hook parameters; wrapping a driver call in this context (as the CLI's
    ``--progress`` flag does) observes their sweeps without widening every
    driver signature.  Explicit ``run(..., telemetry=..., on_unit=...)``
    arguments win over the ambient hooks.
    """
    token = _AMBIENT_HOOKS.set((telemetry, on_unit))
    try:
        yield
    finally:
        _AMBIENT_HOOKS.reset(token)


def run(
    spec: ExperimentSpec,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Telemetry] = None,
    on_unit: Optional[ProgressHook] = None,
) -> List[Any]:
    """Evaluate every unit of ``spec`` and return results in unit order.

    Parameters
    ----------
    spec:
        The declarative description of the experiment (scale + work units).
    executor:
        Where units are evaluated; defaults to :class:`SerialExecutor`.
        Units never share state, so any executor yields identical numbers.
    cache:
        Optional content-addressed :class:`ResultCache`.  Hits skip
        execution entirely; misses are stored *as they complete* (via the
        executor's ordered ``imap`` when it provides one), so an interrupted
        or partially-failed sweep keeps every finished unit's result.
    telemetry:
        Optional shared registry; the run counts ``units_total`` /
        ``units_cached`` / ``units_executed`` and accumulates the execution
        wall clock under the ``run_execute`` timer.
    on_unit:
        Optional ``on_unit(index, total, unit, source)`` callback fired once
        per unit as its result lands, with ``source`` being ``"cache"`` or
        ``"executed"``.  Runs in the calling process (also under a parallel
        executor), so it may print or update UI state freely.
    """
    executor = executor or SerialExecutor()
    ambient_telemetry, ambient_on_unit = _AMBIENT_HOOKS.get()
    if telemetry is None:
        telemetry = ambient_telemetry
    if on_unit is None:
        on_unit = ambient_on_unit
    total = len(spec.units)
    if telemetry is not None:
        telemetry.increment("units_total", total)
    results: List[Any] = [None] * total
    pending_indices: List[int] = []

    if cache is not None:
        fingerprints = spec.fingerprints()
        for index, key in enumerate(fingerprints):
            hit, value = cache.lookup(key)
            if hit:
                results[index] = value
                if telemetry is not None:
                    telemetry.increment("units_cached")
                if on_unit is not None:
                    on_unit(index, total, spec.units[index], "cache")
            else:
                pending_indices.append(index)
    else:
        fingerprints = None
        pending_indices = list(range(total))

    if pending_indices:
        # Specs may legitimately repeat a unit (e.g. Figure 12's base-config
        # timing appears in two panels); evaluate each distinct unit once and
        # fan its result out to every position.
        distinct: "dict[Any, List[int]]" = {}
        for index in pending_indices:
            distinct.setdefault(spec.units[index], []).append(index)
        payloads = [(spec.scale, unit) for unit in distinct]
        imap = getattr(executor, "imap", None)
        timer = telemetry.timer("run_execute") if telemetry is not None else None
        if timer is not None:
            timer.__enter__()
        try:
            if imap is not None:
                computed = imap(execute_payload, payloads)
            else:  # executors only providing the barrier-style map
                computed = iter(executor.map(execute_payload, payloads))
            for indices, result in zip(distinct.values(), computed):
                for index in indices:
                    results[index] = result
                if cache is not None:
                    cache.store(fingerprints[indices[0]], result)
                if telemetry is not None:
                    telemetry.increment("units_executed", len(indices))
                if on_unit is not None:
                    for index in indices:
                        on_unit(index, total, spec.units[index], "executed")
        finally:
            if timer is not None:
                timer.__exit__(None, None, None)
    return results
