"""The ``repro.run`` facade: evaluate an :class:`ExperimentSpec`.

``run(spec)`` is the single entry point every experiment driver goes
through.  It resolves cached units, fans the misses out through the chosen
executor (serial by default, a process pool via
:class:`~repro.runtime.executor.ParallelExecutor`) and returns results in
unit order, so a driver is just a spec-builder plus a result-assembler.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .cache import ResultCache
from .executor import Executor, SerialExecutor
from .registry import execute_payload
from .spec import ExperimentSpec


def run(spec: ExperimentSpec,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None) -> List[Any]:
    """Evaluate every unit of ``spec`` and return results in unit order.

    Parameters
    ----------
    spec:
        The declarative description of the experiment (scale + work units).
    executor:
        Where units are evaluated; defaults to :class:`SerialExecutor`.
        Units never share state, so any executor yields identical numbers.
    cache:
        Optional content-addressed :class:`ResultCache`.  Hits skip
        execution entirely; misses are stored *as they complete* (via the
        executor's ordered ``imap`` when it provides one), so an interrupted
        or partially-failed sweep keeps every finished unit's result.
    """
    executor = executor or SerialExecutor()
    results: List[Any] = [None] * len(spec.units)
    pending_indices: List[int] = []

    if cache is not None:
        fingerprints = spec.fingerprints()
        for index, key in enumerate(fingerprints):
            hit, value = cache.lookup(key)
            if hit:
                results[index] = value
            else:
                pending_indices.append(index)
    else:
        fingerprints = None
        pending_indices = list(range(len(spec.units)))

    if pending_indices:
        # Specs may legitimately repeat a unit (e.g. Figure 12's base-config
        # timing appears in two panels); evaluate each distinct unit once and
        # fan its result out to every position.
        distinct: "dict[Any, List[int]]" = {}
        for index in pending_indices:
            distinct.setdefault(spec.units[index], []).append(index)
        payloads = [(spec.scale, unit) for unit in distinct]
        imap = getattr(executor, "imap", None)
        if imap is not None:
            computed = imap(execute_payload, payloads)
        else:  # executors only providing the barrier-style map
            computed = iter(executor.map(execute_payload, payloads))
        for indices, result in zip(distinct.values(), computed):
            for index in indices:
                results[index] = result
            if cache is not None:
                cache.store(fingerprints[indices[0]], result)
    return results
