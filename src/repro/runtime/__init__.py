"""Declarative experiment runtime: specs, executors, caching, one ``run()``.

The paper's evaluation is an embarrassingly parallel sweep over
(dataset, model, seed) configurations.  This package turns each sweep cell
into a frozen :class:`WorkUnit`, bundles them into an
:class:`ExperimentSpec`, and evaluates specs through a pluggable
:class:`Executor` (serial or process-pool) with an optional
content-addressed :class:`ResultCache`:

>>> from repro.experiments import table3_spec, tiny_scale
>>> from repro.runtime import ParallelExecutor, ResultCache, run
>>> spec = table3_spec(tiny_scale())                     # doctest: +SKIP
>>> results = run(spec, executor=ParallelExecutor(workers=4),
...               cache=ResultCache())                   # doctest: +SKIP

Per-unit seeds are derived from the unit parameters alone, so serial and
parallel execution produce bit-identical numbers, and cache hits are
byte-identical to cold runs.  The ``python -m repro`` CLI exposes the whole
experiment suite on top of this API.
"""

from .api import progress_hooks, run
from .cache import CacheStats, ResultCache
from .executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    executor_label,
    make_executor,
)
from .registry import (
    WORK_FUNCTIONS,
    execute_unit,
    register_provider,
    register_work,
    resolve_work,
)
from .spec import (
    ExperimentSpec,
    WorkUnit,
    canonicalize,
    decanonicalize,
    unit_fingerprint,
)

__all__ = [
    "run",
    "progress_hooks",
    "ResultCache",
    "CacheStats",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "executor_label",
    "WorkUnit",
    "ExperimentSpec",
    "canonicalize",
    "decanonicalize",
    "unit_fingerprint",
    "WORK_FUNCTIONS",
    "register_work",
    "register_provider",
    "resolve_work",
    "execute_unit",
]
