"""Entry point for ``python -m repro`` (see :mod:`repro.runtime.cli`)."""

import sys

from .runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
