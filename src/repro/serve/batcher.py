"""Dynamic micro-batching: coalesce concurrent requests into one engine call.

Requests enter through :meth:`MicroBatcher.submit`, which returns a
:class:`concurrent.futures.Future` immediately.  Each *group key* (the
serving layer uses ``(artifact name, request kind)``) owns a dedicated
worker thread with its own queue — one slow dCAM flush can therefore never
stall classify traffic, or another model's explains: flushes of different
groups overlap freely.  A group's worker drains its queue and flushes a
batch to the ``execute`` callable when either

* the batch reaches the policy's ``max_batch_size`` requests, or
* its oldest request has waited the policy's ``max_wait_s``.

Both bounds come from a pluggable :class:`~repro.serve.policy.BatchPolicy`
consulted once per accumulation round and fed back the width, wall clock and
remaining backlog of every flush — a :class:`StaticBatchPolicy` reproduces
the fixed-knob behaviour (``max_batch_size=1`` is the serial per-request
dispatch mode the throughput benchmark compares against), an
:class:`~repro.serve.policy.AdaptiveBatchPolicy` tunes the bounds from the
observed load.

Admission control: ``max_queue_depth`` bounds each group's in-flight
requests (queued + executing).  A submit over the bound fails fast with
:class:`QueueFullError` carrying a ``retry_after_s`` estimate from the
group's smoothed service rate — the backpressure signal the HTTP layer
translates into ``429`` + ``Retry-After`` instead of letting queues (and
client latency) grow without bound.  ``max_total_depth`` adds a *global*
bound across every group, and it is **priority-aware**: normal-priority
submits (expensive explains) are shed once the total reaches
``shed_watermark`` of the bound, while high-priority submits (cheap
classifies, health-relevant traffic) ride all the way to the full bound — so
under fleet-wide pressure the service keeps answering cheap requests long
after it has started refusing expensive ones.

The ``execute(group_key, requests)`` callable runs on the group's worker
thread and must return one result per request (order-preserving); an
exception fails every future of the flush.  Results must not depend on how
requests were grouped — the engine layer (:mod:`repro.serve.engine`)
guarantees that, so neither the per-group workers nor any batching policy
can change response bytes.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..obs.tracing import TraceContext, activate, current, span
from ..telemetry import Telemetry
from .policy import BatchPolicy, StaticBatchPolicy

#: Default flush bounds: large enough to fill under concurrent load, small
#: enough that an isolated request barely notices.
DEFAULT_MAX_BATCH_SIZE = 8
DEFAULT_MAX_WAIT_MS = 2.0

#: Fallback ``retry_after_s`` before a group has measured its service rate.
DEFAULT_RETRY_AFTER_S = 1.0

_SHUTDOWN = object()


class QueueFullError(RuntimeError):
    """A group's in-flight bound was hit; retry after ``retry_after_s``."""

    def __init__(self, group_key: Hashable, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"group {group_key!r} is overloaded: {depth} requests in flight "
            f"(bound {limit}); retry in ~{retry_after_s:.2f}s"
        )
        self.group_key = group_key
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


@dataclass
class _Pending:
    request: Any
    future: Future
    #: Relative execution cost (e.g. a dCAM request's permutation count ``k``);
    #: summed per flush and reported to the policy so queue pressure is
    #: measured in work, not request count.
    cost: float = 1.0
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: Trace context captured on the *submitting* thread — the flush runs on
    #: the group's worker thread, where the submitter's context variable is
    #: invisible, so cross-thread propagation has to be explicit.
    trace: Optional[TraceContext] = None


class _GroupWorker:
    """One queue + worker thread serving a single group key.

    In-flight accounting (``depth``) covers queued *and* currently-executing
    requests; it is incremented by the owning batcher under its admission
    check and decremented here as each future resolves, so the bound holds
    however slow the flushes run.
    """

    def __init__(self, batcher: "MicroBatcher", group_key: Hashable) -> None:
        self.batcher = batcher
        self.group_key = group_key
        self.queue: "queue.Queue" = queue.Queue()
        self.depth = 0
        #: Summed cost of the in-flight requests (same accounting as depth).
        self.cost_in_flight = 0.0
        self.depth_lock = threading.Lock()
        #: EWMA of per-request service seconds; drives retry-after estimates.
        self.request_seconds: Optional[float] = None
        self.thread = threading.Thread(
            target=self._loop,
            name=f"repro-serve-batcher-{group_key!r}",
            daemon=True,
        )
        self.thread.start()

    # ------------------------------------------------------------------
    def admit(self, cost: float = 1.0) -> bool:
        """Reserve one in-flight slot; False when the bound is hit."""
        limit = self.batcher.max_queue_depth
        with self.depth_lock:
            if limit is not None and self.depth >= limit:
                return False
            self.depth += 1
            self.cost_in_flight += cost
        self._publish_depth()
        return True

    def release(self, count: int = 1, cost: float = 0.0) -> None:
        with self.depth_lock:
            self.depth -= count
            self.cost_in_flight = max(0.0, self.cost_in_flight - cost)
        self.batcher._release_total(count)
        self._publish_depth()

    def retry_after(self) -> float:
        """Seconds until the backlog plausibly drained at the observed rate."""
        per_request = self.request_seconds
        if per_request is None:
            return DEFAULT_RETRY_AFTER_S
        return min(30.0, max(0.05, per_request * self.depth))

    def _publish_depth(self) -> None:
        self.batcher.telemetry.gauge(_depth_gauge_name(self.group_key)).set(self.depth)

    # ------------------------------------------------------------------
    def _flush(self, batch: List[_Pending], reason: str) -> None:
        telemetry = self.batcher.telemetry
        telemetry.increment("batches_flushed")
        telemetry.increment("batched_requests", len(batch))
        telemetry.increment(f"flushes_{reason}")
        if isinstance(self.group_key, tuple) and len(self.group_key) == 2:
            kind = self.group_key[1]
        else:
            kind = "other"
        batch_cost = sum(pending.cost for pending in batch)
        started = time.perf_counter()
        # Batcher-visible queueing delay of this flush: how long its oldest
        # request sat before execution began.  Reported to the policy so an
        # adaptive width answers to end-to-end latency, not just flush time.
        queue_seconds = max(0.0, started - batch[0].enqueued_at)
        # Per-request queue-wait distribution, plus a queue span per *traced*
        # request.  Engine/cache spans of a coalesced flush attribute to the
        # first traced request of the batch (the flush runs once for all of
        # them); the per-request queue spans keep every traced request's own
        # wait visible.
        queue_timer = telemetry.timer(f"queue_wait_{kind}")
        wall_started = time.time()
        first_trace: Optional[TraceContext] = None
        for pending in batch:
            wait = max(0.0, started - pending.enqueued_at)
            queue_timer.add(wait)
            if pending.trace is not None:
                pending.trace.tracer.record(
                    pending.trace, "batcher.queue", wall_started - wait, wait, attrs={"kind": str(kind)}
                )
                if first_trace is None:
                    first_trace = pending.trace
        try:
            with telemetry.timer(f"flush_{kind}"):
                if first_trace is not None:
                    with activate(first_trace):
                        with span("batcher.flush", width=len(batch), reason=reason):
                            self._execute_batch(batch)
                else:
                    self._execute_batch(batch)
        finally:
            elapsed = time.perf_counter() - started
            self.release(len(batch), batch_cost)
            per_request = elapsed / len(batch)
            if self.request_seconds is None:
                self.request_seconds = per_request
            else:
                self.request_seconds += 0.3 * (per_request - self.request_seconds)
            self.batcher.policy.observe(
                self.group_key,
                len(batch),
                elapsed,
                queue_depth=self.depth,
                batch_cost=batch_cost,
                queue_cost=self.cost_in_flight,
                queue_seconds=queue_seconds,
            )

    def _execute_batch(self, batch: List[_Pending]) -> None:
        execute = self.batcher._execute
        try:
            results = execute(self.group_key, [pending.request for pending in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"execute returned {len(results)} results for {len(batch)} requests"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded per future below
            if len(batch) == 1:
                batch[0].future.set_exception(error)
                return
            # One bad request must not fail its coalesced companions: retry
            # the batch one request at a time so only the offender errors.
            # Nothing was resolved yet, so re-execution never double-serves.
            self.batcher.telemetry.increment("flush_error_isolations")
            for pending in batch:
                try:
                    result = execute(self.group_key, [pending.request])[0]
                except BaseException as single_error:  # noqa: BLE001
                    pending.future.set_exception(single_error)
                else:
                    pending.future.set_result(result)
            return
        for pending, result in zip(batch, results):
            pending.future.set_result(result)

    def _loop(self) -> None:
        pending: List[_Pending] = []
        shutdown = False
        while True:
            decision = self.batcher.policy.decision(self.group_key)
            if pending:
                deadline = pending[0].enqueued_at + decision.max_wait_s
                timeout = max(0.0, deadline - time.perf_counter())
            else:
                timeout = None
            try:
                item = self.queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            # Drain everything already queued before deciding what to flush:
            # requests that piled up while the previous flush executed should
            # coalesce, not trickle out one per loop iteration as their wait
            # deadlines expire.
            while item is not None:
                if item is _SHUTDOWN:
                    shutdown = True
                else:
                    pending.append(item)
                    if len(pending) >= decision.max_batch_size:
                        size = decision.max_batch_size
                        batch, pending = pending[:size], pending[size:]
                        self._flush(batch, "full")
                        decision = self.batcher.policy.decision(self.group_key)
                try:
                    item = self.queue.get_nowait()
                except queue.Empty:
                    item = None
            if pending and (
                shutdown
                or time.perf_counter() - pending[0].enqueued_at >= decision.max_wait_s
            ):
                batch, pending = pending, []
                self._flush(batch, "shutdown" if shutdown else "timed_out")
            if shutdown and not pending:
                return

    def fail_queued(self, error_factory: Callable[[], BaseException]) -> int:
        """Fail everything still sitting in the queue (post-timeout drain)."""
        items = []
        while True:
            try:
                items.append(self.queue.get_nowait())
            except queue.Empty:
                break
        failed = 0
        for item in items:
            if item is _SHUTDOWN:
                # Keep the marker: a worker stuck inside execute still needs
                # it to exit its loop once the engine call returns.
                self.queue.put(item)
            else:
                if item.future.set_running_or_notify_cancel():
                    item.future.set_exception(error_factory())
                self.release(cost=item.cost)
                failed += 1
        return failed


class MicroBatcher:
    """Per-group queues + worker threads coalescing requests per group key.

    Parameters
    ----------
    execute:
        ``execute(group_key, requests) -> results`` — evaluated on the
        group's worker thread with between 1 and the policy's
        ``max_batch_size`` requests per call.
    max_batch_size:
        Flush threshold of the default static policy; ``1`` disables
        coalescing (serial dispatch).  Ignored when ``policy`` is given.
    max_wait_ms:
        Wait bound of the default static policy.  Ignored when ``policy``
        is given.
    policy:
        A :class:`~repro.serve.policy.BatchPolicy`; defaults to
        ``StaticBatchPolicy(max_batch_size, max_wait_ms)``.
    max_queue_depth:
        Per-group bound on in-flight requests (queued + executing); submits
        over it raise :class:`QueueFullError`.  ``None`` disables shedding.
    max_total_depth:
        Global bound on in-flight requests across *all* groups; ``None``
        disables it.  Priority-aware: submits with ``priority > 0`` may fill
        the whole bound, priority-0 submits are shed once the total reaches
        ``shed_watermark * max_total_depth`` — expensive work yields
        admission headroom to cheap work under global pressure.
    shed_watermark:
        Fraction of ``max_total_depth`` where priority-0 submits start
        shedding (default 0.75).
    telemetry:
        Optional shared registry; the batcher counts ``batches_flushed``,
        ``batched_requests``, ``flushes_full`` / ``flushes_timed_out`` /
        ``flushes_shutdown``, ``requests_shed`` (plus
        ``requests_shed_priority`` for priority-0 sheds at the global
        watermark), per-kind ``flush_<kind>`` / ``queue_wait_<kind>`` timers
        (each backed by a latency histogram), per-group ``queue_depth[...]``
        gauges and the global ``total_depth`` gauge.
    """

    def __init__(
        self,
        execute: Callable[[Hashable, List[Any]], List[Any]],
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        telemetry: Optional[Telemetry] = None,
        policy: Optional[BatchPolicy] = None,
        max_queue_depth: Optional[int] = None,
        max_total_depth: Optional[int] = None,
        shed_watermark: float = 0.75,
    ) -> None:
        self._execute = execute
        self.policy = policy if policy is not None else StaticBatchPolicy(max_batch_size, max_wait_ms)
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_total_depth is not None and max_total_depth < 1:
            raise ValueError(f"max_total_depth must be >= 1, got {max_total_depth}")
        if not 0.0 < shed_watermark <= 1.0:
            raise ValueError(f"shed_watermark must be in (0, 1], got {shed_watermark}")
        self.max_queue_depth = max_queue_depth
        self.max_total_depth = max_total_depth
        self.shed_watermark = float(shed_watermark)
        self._total_depth = 0
        self._total_lock = threading.Lock()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._workers: Dict[Hashable, _GroupWorker] = {}
        self._closed = False
        # Serialises submit's closed-check+enqueue against close's
        # closed-set+shutdown-marker: every accepted request is enqueued
        # *before* its group's marker, so the worker's shutdown drain flushes
        # it and no future is ever stranded by a submit/close race.
        self._lifecycle = threading.Lock()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(
        self, group_key: Hashable, request: Any, cost: float = 1.0, priority: int = 0
    ) -> "Future":
        """Enqueue ``request`` under ``group_key``; resolve via the future.

        ``cost`` is the request's relative execution weight (the serving layer
        passes a dCAM explain's permutation count ``k``); a cost-aware policy
        sizes flushes from the summed cost of the backlog rather than the raw
        request count.  The default ``1.0`` reproduces count-based behaviour.

        ``priority`` only matters under a global ``max_total_depth`` bound:
        priority-0 submits shed at the ``shed_watermark`` fraction of it,
        ``priority > 0`` submits at the full bound (cheap classifies outlive
        expensive explains under global pressure).

        Raises :class:`RuntimeError` after :meth:`close` and
        :class:`QueueFullError` when the group's or the global in-flight
        bound is hit.
        """
        if not cost > 0.0:
            raise ValueError(f"cost must be > 0, got {cost}")
        pending = _Pending(request=request, future=Future(), cost=float(cost), trace=current())
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            worker = self._workers.get(group_key)
            if worker is None:
                worker = self._workers[group_key] = _GroupWorker(self, group_key)
            admitted, total_limit = self._admit_total(priority)
            if not admitted:
                self.telemetry.increment("requests_shed")
                if priority <= 0:
                    self.telemetry.increment("requests_shed_priority")
                raise QueueFullError(
                    group_key, self._total_depth, total_limit, worker.retry_after()
                )
            if not worker.admit(pending.cost):
                self._release_total()
                self.telemetry.increment("requests_shed")
                raise QueueFullError(
                    group_key, worker.depth, self.max_queue_depth, worker.retry_after()
                )
            worker.queue.put(pending)
        return pending.future

    def _admit_total(self, priority: int) -> Tuple[bool, Optional[int]]:
        """Reserve one global slot; ``(admitted, effective_limit)``."""
        limit = self.max_total_depth
        effective = limit
        with self._total_lock:
            if limit is not None:
                if priority <= 0:
                    effective = max(1, int(limit * self.shed_watermark))
                if self._total_depth >= effective:
                    return False, effective
            self._total_depth += 1
            depth = self._total_depth
        self.telemetry.gauge("total_depth").set(depth)
        return True, effective

    def _release_total(self, count: int = 1) -> None:
        with self._total_lock:
            self._total_depth = max(0, self._total_depth - count)
            depth = self._total_depth
        self.telemetry.gauge("total_depth").set(depth)

    def queue_depth(self, group_key: Hashable) -> int:
        """Current in-flight requests (queued + executing) of one group."""
        worker = self._workers.get(group_key)
        return 0 if worker is None else worker.depth

    def close(self, timeout: Optional[float] = None) -> None:
        """Flush everything still queued and stop every worker thread.

        Gracefully drains by default: each group's worker flushes its
        backlog before exiting.  Pass ``timeout`` to bound the *total* wait —
        anything still queued (not yet handed to ``execute``) when it expires
        fails fast with :class:`RuntimeError` instead of leaving callers
        blocked; requests already inside an ``execute`` call still resolve
        whenever it returns.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            for worker in workers:
                worker.queue.put(_SHUTDOWN)
        deadline = None if timeout is None else time.perf_counter() + timeout
        for worker in workers:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            worker.thread.join(timeout=remaining)
        for worker in workers:  # only finds work when a join timed out
            worker.fail_queued(lambda: RuntimeError("MicroBatcher is closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _depth_gauge_name(group_key: Hashable) -> str:
    if isinstance(group_key, tuple):
        label = "/".join(str(part) for part in group_key)
    else:
        label = str(group_key)
    return f"queue_depth[{label}]"


def group_key_of(model_name: str, kind: str) -> Tuple[str, str]:
    """The canonical grouping key: one flush never mixes models or kinds."""
    return (model_name, kind)
