"""Dynamic micro-batching: coalesce concurrent requests into one engine call.

Requests enter through :meth:`MicroBatcher.submit`, which returns a
:class:`concurrent.futures.Future` immediately.  A single worker thread
drains the queue, groups requests by their *group key* (the serving layer
uses ``(artifact name, request kind)``) and flushes a group to the
``execute`` callable when either

* the group reaches ``max_batch_size`` requests, or
* its oldest request has waited ``max_wait_ms`` milliseconds.

The wait bound is what makes the batching *dynamic*: under load, flushes are
full batches amortising one model forward over many requests; a lone request
only ever pays the wait bound on top of its own execution.  With
``max_batch_size=1`` every request flushes immediately — the serial
per-request dispatch mode the throughput benchmark compares against.

The ``execute(group_key, requests)`` callable runs on the worker thread and
must return one result per request (order-preserving); an exception fails
every future of the flush.  Results must not depend on how requests were
grouped — the engine layer (:mod:`repro.serve.engine`) guarantees that.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..telemetry import Telemetry

#: Default flush bounds: large enough to fill under concurrent load, small
#: enough that an isolated request barely notices.
DEFAULT_MAX_BATCH_SIZE = 8
DEFAULT_MAX_WAIT_MS = 2.0

_SHUTDOWN = object()


@dataclass
class _Pending:
    request: Any
    future: Future
    enqueued_at: float = field(default_factory=time.perf_counter)


class MicroBatcher:
    """Queue + worker thread coalescing requests per group key.

    Parameters
    ----------
    execute:
        ``execute(group_key, requests) -> results`` — evaluated on the worker
        thread with between 1 and ``max_batch_size`` requests per call.
    max_batch_size:
        Flush threshold; ``1`` disables coalescing (serial dispatch).
    max_wait_ms:
        Upper bound on how long the oldest queued request of a group may wait
        for companions before its partial batch is flushed.
    telemetry:
        Optional shared registry; the batcher counts ``batches_flushed``,
        ``batched_requests``, ``flushes_full`` and ``flushes_timed_out``.
    """

    def __init__(
        self,
        execute: Callable[[Hashable, List[Any]], List[Any]],
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._execute = execute
        self.max_batch_size = max(1, int(max_batch_size))
        self.max_wait = max(0.0, float(max_wait_ms)) / 1000.0
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        # Serialises submit's closed-check+enqueue against close's
        # closed-set+shutdown-marker: every accepted request is enqueued
        # *before* the marker, so the worker's shutdown drain flushes it and
        # no future is ever stranded by a submit/close race.
        self._lifecycle = threading.Lock()
        self._worker = threading.Thread(target=self._loop, name="repro-serve-batcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, group_key: Hashable, request: Any) -> "Future":
        """Enqueue ``request`` under ``group_key``; resolve via the future."""
        pending = _Pending(request=request, future=Future())
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.put((group_key, pending))
        return pending.future

    def close(self, timeout: Optional[float] = None) -> None:
        """Flush everything still queued and stop the worker thread.

        Waits for in-flight flushes by default; pass ``timeout`` to bound the
        wait — anything still queued when it expires fails with
        :class:`RuntimeError` instead of leaving callers blocked.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)
        while True:  # only reachable when the join timed out
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                _, entry = item
                entry.future.set_exception(RuntimeError("MicroBatcher is closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _flush(self, group_key: Hashable, batch: List[_Pending], reason: str) -> None:
        self.telemetry.increment("batches_flushed")
        self.telemetry.increment("batched_requests", len(batch))
        self.telemetry.increment(f"flushes_{reason}")
        try:
            results = self._execute(group_key, [pending.request for pending in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"execute returned {len(results)} results for {len(batch)} requests"
                )
        except BaseException as error:  # noqa: BLE001 - forwarded per future below
            if len(batch) == 1:
                batch[0].future.set_exception(error)
                return
            # One bad request must not fail its coalesced companions: retry
            # the batch one request at a time so only the offender errors.
            # Nothing was resolved yet, so re-execution never double-serves.
            self.telemetry.increment("flush_error_isolations")
            for pending in batch:
                try:
                    result = self._execute(group_key, [pending.request])[0]
                except BaseException as single_error:  # noqa: BLE001
                    pending.future.set_exception(single_error)
                else:
                    pending.future.set_result(result)
            return
        for pending, result in zip(batch, results):
            pending.future.set_result(result)

    def _loop(self) -> None:
        pending: Dict[Hashable, List[_Pending]] = {}

        def oldest_deadline() -> Optional[float]:
            if not pending:
                return None
            return min(batch[0].enqueued_at for batch in pending.values()) + self.max_wait

        shutdown = False
        while True:
            deadline = oldest_deadline()
            timeout = None if deadline is None else max(0.0, deadline - time.perf_counter())
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = None
            # Drain everything already queued before deciding what to flush:
            # requests that piled up while the previous flush executed should
            # coalesce, not trickle out one per loop iteration as their wait
            # deadlines expire.
            while item is not None:
                if item is _SHUTDOWN:
                    shutdown = True
                else:
                    group_key, entry = item
                    batch = pending.setdefault(group_key, [])
                    batch.append(entry)
                    if len(batch) >= self.max_batch_size:
                        del pending[group_key]
                        self._flush(group_key, batch, "full")
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    item = None
            now = time.perf_counter()
            for group_key in list(pending):
                batch = pending[group_key]
                if shutdown or now - batch[0].enqueued_at >= self.max_wait:
                    del pending[group_key]
                    self._flush(group_key, batch, "shutdown" if shutdown else "timed_out")
            if shutdown:
                return


def group_key_of(model_name: str, kind: str) -> Tuple[str, str]:
    """The canonical grouping key: one flush never mixes models or kinds."""
    return (model_name, kind)
