"""Batching policies: how large a flush grows and how long requests wait.

The micro-batcher (:mod:`repro.serve.batcher`) asks its policy, once per
accumulation round, for a :class:`FlushDecision` — the flush threshold and
the wait bound of the *next* batch of one ``(model, kind)`` group — and
reports every executed flush back through :meth:`BatchPolicy.observe`.  A
policy therefore closes a feedback loop over exactly the two signals the
serving layer already measures (queue depth and per-flush latency); it never
touches request payloads, so **no policy can change response bytes** — the
engines of :mod:`repro.serve.engine` are coalescing-invariant and the parity
probe / per-request fallback sits below the policy layer.

Two implementations:

* :class:`StaticBatchPolicy` — the PR-5 reference behaviour: constant flush
  size and wait bound.  Retained as the baseline the load benchmark
  (``benchmarks/bench_serve_load.py``) compares against.
* :class:`AdaptiveBatchPolicy` — feedback-driven (the Bao move: replace
  fixed heuristics with decisions driven by observed behaviour).  Per group
  it tracks an exponentially-weighted mean of queue depth and of per-flush
  latency — the depth weighted by per-request *cost* when the submitter
  reports one (dCAM explains pass their permutation count ``k``, so a short
  queue of heavy explains registers as the backlog it really is) — then
  walks the flush size up when a backlog persists (deep queue
  → bigger batches amortise per-flush overhead → higher goodput) and back
  down when the queue idles or flushes exceed a latency budget (→ bounded
  tail latency).  Both walks require ``hysteresis`` *consecutive* signals
  before stepping, so scheduler noise cannot flap the knobs, and every
  decision is clamped to hard bounds from :class:`~repro.serve.service.ServeConfig`.

Policy state is only read and mutated from the owning group's single worker
thread, so implementations need no internal locking (the per-group state
dict itself is guarded for concurrent first access).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..telemetry import Telemetry


@dataclass(frozen=True)
class FlushDecision:
    """The batcher's marching orders for one accumulation round."""

    #: Flush as soon as this many requests are pending.
    max_batch_size: int
    #: Flush a partial batch once its oldest request waited this long.
    max_wait_s: float


class BatchPolicy:
    """Decide flush bounds per group; observe every executed flush."""

    def decision(self, group_key: Hashable) -> FlushDecision:
        """The flush bounds the group's worker applies to its next batch."""
        raise NotImplementedError

    def observe(
        self,
        group_key: Hashable,
        batch_size: int,
        flush_seconds: float,
        queue_depth: int,
        batch_cost: Optional[float] = None,
        queue_cost: Optional[float] = None,
        queue_seconds: Optional[float] = None,
    ) -> None:
        """Feedback after a flush: its width, wall clock and the backlog left.

        ``batch_cost`` / ``queue_cost`` carry the summed request costs of the
        flushed batch and of the remaining backlog (e.g. dCAM permutation
        counts ``k``) when the submitter provided them; cost-aware policies
        may size flushes from them instead of raw request counts.
        ``queue_seconds`` is the batcher-visible queueing delay of the flush
        (how long its oldest request waited before execution started) —
        together with ``flush_seconds`` it approximates the end-to-end
        latency a client observed.
        """

    def describe(self) -> str:
        return type(self).__name__


class StaticBatchPolicy(BatchPolicy):
    """Constant flush bounds — the reference behaviour of PR 5."""

    def __init__(self, max_batch_size: int = 8, max_wait_ms: float = 2.0) -> None:
        self._decision = FlushDecision(
            max_batch_size=max(1, int(max_batch_size)),
            max_wait_s=max(0.0, float(max_wait_ms)) / 1000.0,
        )

    def decision(self, group_key: Hashable) -> FlushDecision:
        return self._decision

    def describe(self) -> str:
        return (
            f"static(max_batch_size={self._decision.max_batch_size}, "
            f"max_wait_ms={self._decision.max_wait_s * 1000.0:g})"
        )


class _GroupState:
    """Per-(model, kind) feedback state of the adaptive policy."""

    __slots__ = (
        "batch_size",
        "wait_s",
        "depth_ewma",
        "latency_ewma",
        "queue_ewma",
        "cost_ewma",
        "grow_streak",
        "shrink_streak",
    )

    def __init__(self, batch_size: int, wait_s: float) -> None:
        self.batch_size = batch_size
        self.wait_s = wait_s
        self.depth_ewma = 0.0
        self.latency_ewma: Optional[float] = None
        self.queue_ewma = 0.0
        self.cost_ewma: Optional[float] = None
        self.grow_streak = 0
        self.shrink_streak = 0


class AdaptiveBatchPolicy(BatchPolicy):
    """Feedback-driven flush bounds with hysteresis and hard clamps.

    Parameters
    ----------
    min_batch_size, max_batch_size:
        Hard bounds of the flush threshold; the policy starts at
        ``initial_batch_size`` (clamped) and doubles / halves within them.
    min_wait_ms, max_wait_ms:
        Hard bounds of the wait bound.  Under backlog the wait collapses to
        the minimum (companions are already queued — waiting only adds
        latency); when the queue idles it relaxes back toward
        ``initial_wait_ms`` so lone requests can still pick up companions.
    latency_budget_ms:
        Soft ceiling on the smoothed per-flush wall clock.  Flushes slower
        than this shrink the batch even under backlog — the knob that keeps
        p99 bounded instead of letting goodput greed grow flushes without
        limit.  The same budget is also held against the smoothed
        *end-to-end* latency (batcher-visible queueing + flush): when
        queueing pushes it over budget while flushes themselves are fine,
        that is a **grow** signal — wider flushes drain the queue — so the
        width answers to what clients actually wait, not just flush wall
        clock.
    hysteresis:
        Consecutive same-direction signals required before the policy steps.
    ewma_alpha:
        Smoothing factor of the depth/latency averages (higher = twitchier).
    telemetry:
        Optional registry; the policy publishes its current flush size per
        group as gauge ``policy_batch_size[<model>/<kind>]`` and counts
        ``policy_grow_steps`` / ``policy_shrink_steps``.
    """

    def __init__(
        self,
        initial_batch_size: int = 8,
        min_batch_size: int = 1,
        max_batch_size: int = 64,
        initial_wait_ms: float = 2.0,
        min_wait_ms: float = 0.0,
        max_wait_ms: float = 8.0,
        latency_budget_ms: float = 250.0,
        hysteresis: int = 3,
        ewma_alpha: float = 0.3,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if min_batch_size < 1:
            raise ValueError(f"min_batch_size must be >= 1, got {min_batch_size}")
        if max_batch_size < min_batch_size:
            raise ValueError(
                f"max_batch_size {max_batch_size} below min_batch_size {min_batch_size}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.min_batch_size = int(min_batch_size)
        self.max_batch_size = int(max_batch_size)
        self.initial_batch_size = min(
            self.max_batch_size, max(self.min_batch_size, int(initial_batch_size))
        )
        self.min_wait_s = max(0.0, float(min_wait_ms)) / 1000.0
        self.max_wait_s = max(self.min_wait_s, float(max_wait_ms) / 1000.0)
        self.initial_wait_s = min(
            self.max_wait_s, max(self.min_wait_s, float(initial_wait_ms) / 1000.0)
        )
        self.latency_budget_s = max(0.0, float(latency_budget_ms)) / 1000.0
        self.hysteresis = max(1, int(hysteresis))
        self.ewma_alpha = float(ewma_alpha)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._states: Dict[Hashable, _GroupState] = {}
        self._states_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _state(self, group_key: Hashable) -> _GroupState:
        state = self._states.get(group_key)
        if state is None:
            with self._states_lock:
                state = self._states.setdefault(
                    group_key, _GroupState(self.initial_batch_size, self.initial_wait_s)
                )
        return state

    def decision(self, group_key: Hashable) -> FlushDecision:
        state = self._state(group_key)
        return FlushDecision(max_batch_size=state.batch_size, max_wait_s=state.wait_s)

    def observe(
        self,
        group_key: Hashable,
        batch_size: int,
        flush_seconds: float,
        queue_depth: int,
        batch_cost: Optional[float] = None,
        queue_cost: Optional[float] = None,
        queue_seconds: Optional[float] = None,
    ) -> None:
        state = self._state(group_key)
        alpha = self.ewma_alpha
        # Cost-aware depth: when the submitter reports per-request costs
        # (dCAM explains pass their permutation count ``k``), measure the
        # backlog in units of *average-cost requests* — four queued k=100
        # explains against a smoothed cost of 25 press as hard as sixteen
        # typical ones.  Uniform costs of 1.0 reduce this to the raw depth,
        # so count-only groups (classify) behave exactly as before.
        if batch_cost is not None and batch_size > 0:
            per_request_cost = float(batch_cost) / float(batch_size)
            if state.cost_ewma is None:
                state.cost_ewma = per_request_cost
            else:
                state.cost_ewma += alpha * (per_request_cost - state.cost_ewma)
        effective_depth = float(queue_depth)
        if queue_cost is not None and state.cost_ewma is not None and state.cost_ewma > 0.0:
            effective_depth = float(queue_cost) / state.cost_ewma
        state.depth_ewma += alpha * (effective_depth - state.depth_ewma)
        if state.latency_ewma is None:
            state.latency_ewma = float(flush_seconds)
        else:
            state.latency_ewma += alpha * (float(flush_seconds) - state.latency_ewma)
        if queue_seconds is not None:
            state.queue_ewma += alpha * (float(queue_seconds) - state.queue_ewma)

        # Two views of the latency budget.  *Flush* time over budget means
        # the batches themselves are too slow: shrink.  *End-to-end* time
        # (queueing + flush) over budget while flushes are fine means
        # requests are dying in the queue — the cure is wider flushes that
        # drain the backlog, so it counts as a grow signal (given there is a
        # backlog at all), never a shrink one.
        flush_over = (
            self.latency_budget_s > 0.0 and state.latency_ewma > self.latency_budget_s
        )
        e2e_over = (
            self.latency_budget_s > 0.0
            and state.latency_ewma + state.queue_ewma > self.latency_budget_s
        )
        # A backlog deeper than one full flush means the group is falling
        # behind at the current width; an (EWMA) backlog below half a flush
        # means the width is oversized for the offered load.
        backlogged = not flush_over and (
            state.depth_ewma >= float(state.batch_size)
            or (e2e_over and state.depth_ewma >= 1.0)
        )
        idle = flush_over or (
            state.depth_ewma < 0.5 * float(state.batch_size) and not e2e_over
        )

        state.grow_streak = state.grow_streak + 1 if backlogged else 0
        state.shrink_streak = state.shrink_streak + 1 if idle else 0

        changed = False
        if state.grow_streak >= self.hysteresis:
            state.grow_streak = 0
            grown = min(self.max_batch_size, state.batch_size * 2)
            if grown != state.batch_size:
                state.batch_size = grown
                self.telemetry.increment("policy_grow_steps")
                changed = True
            # Companions are already queued: waiting for more only defers
            # work, so under backlog the wait bound collapses.
            state.wait_s = self.min_wait_s
        elif state.shrink_streak >= self.hysteresis:
            state.shrink_streak = 0
            shrunk = max(self.min_batch_size, state.batch_size // 2)
            if shrunk != state.batch_size:
                state.batch_size = shrunk
                self.telemetry.increment("policy_shrink_steps")
                changed = True
            # Load is light again: relax the wait back toward the initial
            # bound so lone requests can pick up companions.
            state.wait_s = self.initial_wait_s
        if changed:
            self.telemetry.increment("policy_adjustments")
        self.telemetry.gauge(_gauge_name(group_key)).set(state.batch_size)

    def describe(self) -> str:
        return (
            f"adaptive(batch {self.min_batch_size}..{self.max_batch_size}, "
            f"wait {self.min_wait_s * 1000.0:g}..{self.max_wait_s * 1000.0:g}ms, "
            f"latency budget {self.latency_budget_s * 1000.0:g}ms, "
            f"hysteresis {self.hysteresis})"
        )


def _gauge_name(group_key: Hashable) -> str:
    if isinstance(group_key, tuple):
        label = "/".join(str(part) for part in group_key)
    else:
        label = str(group_key)
    return f"policy_batch_size[{label}]"
