"""Content-addressed explanation cache with memory/disk tiers and LRU bounds.

The serving layer answers many requests for the *same* explanation: repeated
classify/explain calls on hot instances, and the dCAM family's permutation
CAMs shared across requests with different ``k``.  Both are served from one
:class:`ExplanationCache`:

* **response level** — whole classify/explain response payloads, keyed by
  :func:`response_cache_key` (SHA-256 over the model-state hash, the instance
  bytes, the class, ``k`` and the permutation seed — everything that
  determines the bytes of a response);
* **permutation level** — the dCAM family's per-permutation CAM rows via the
  :class:`~repro.explain.base.Explainer` cache hook (see
  :func:`repro.explain.dcam.permutation_cache_key`), which also closes the
  ROADMAP "explanation caching below the unit level" item for Figure 10.

Entries are raw bytes, so warm hits are byte-identical to the stored cold
computation.  Both tiers live in the same LRU-bounded
:class:`~repro.runtime.eviction.TieredByteStore` that backs the runtime
:class:`~repro.runtime.cache.ResultCache`; this module adds the content keys
and the telemetry counters.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional, Union

import numpy as np

from ..obs.tracing import span
from ..runtime.eviction import TieredByteStore
from ..telemetry import Telemetry

#: Default in-memory budget: enough for thousands of tiny-scale heatmaps
#: while bounding a long-lived server.
DEFAULT_MEMORY_BYTES = 64 * 1024 * 1024

_SUFFIX = ".blob"


def content_key(*parts: Union[str, bytes, int, float, np.ndarray]) -> str:
    """SHA-256 hex digest over a sequence of typed, length-delimited parts.

    Arrays are folded in with their dtype and shape, so e.g. a float64 and a
    float32 view of the same bytes can never collide.
    """
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            part = np.ascontiguousarray(part)
            encoded = (
                str(part.dtype).encode("ascii")
                + str(part.shape).encode("ascii")
                + part.tobytes()
            )
        elif isinstance(part, bytes):
            encoded = part
        else:
            encoded = repr(part).encode("utf-8")
        digest.update(str(len(encoded)).encode("ascii"))
        digest.update(b":")
        digest.update(encoded)
    return digest.hexdigest()


def response_cache_key(
    model_hash: str,
    kind: str,
    instance: np.ndarray,
    class_id: Optional[int],
    k: Optional[int],
    seed: Optional[int],
) -> str:
    """Key of one served response: model state + request content.

    ``kind`` is ``"classify"`` or ``"explain"``; ``class_id``/``k``/``seed``
    are ``None`` where the request kind does not consume them (classify), so
    requests differing only in irrelevant knobs share an entry.
    """
    return content_key(
        "serve-response", kind, model_hash,
        np.ascontiguousarray(instance, dtype=np.float64),
        "-" if class_id is None else int(class_id),
        "-" if k is None else int(k),
        "-" if seed is None else int(seed),
    )


def stream_window_key(
    model_hash: str,
    window: np.ndarray,
    family: str,
    class_id: Optional[int],
    k: Optional[int],
    seed: Optional[int],
) -> str:
    """Key of one streaming emission: model state + exact window bytes.

    The streaming layer (:mod:`repro.stream`) qualifies every cached
    emission by the serving model-state hash (``:float32``-suffixed on the
    single-precision tier, like :meth:`ExplanationService._serving_hash`)
    and the full window content, so a replayed stream — or two hosts
    watching the same feed — hits without recomputing.  ``class_id`` is the
    *requested* class (``None`` when each window explains its own predicted
    class, which is itself a function of the window bytes); ``k``/``seed``
    pin the dCAM permutation draw and are ``None`` for the CAM families.

    The key is deliberately engine-agnostic: the incremental and naive
    engines agree within documented tolerances (docs/streaming.md), and
    whichever computes a window first populates the entry both serve.
    """
    return content_key(
        "stream-window",
        family,
        model_hash,
        np.ascontiguousarray(window, dtype=np.float64),
        "-" if class_id is None else int(class_id),
        "-" if k is None else int(k),
        "-" if seed is None else int(seed),
    )


class ExplanationCache:
    """Two-tier (memory + optional disk) content-addressed byte store.

    Parameters
    ----------
    directory:
        If given, entries are persisted as ``<directory>/<key>.blob`` and
        lookups fall back to disk, so a restarted server keeps its warm set.
    max_memory_bytes:
        LRU bound of the in-memory tier (``None`` disables eviction).
    max_disk_bytes:
        LRU bound of the disk tier, enforced after every store; least
        recently *used* entry files are deleted first (recency is file
        mtime, bumped on every disk hit).
    telemetry:
        Optional shared :class:`~repro.telemetry.Telemetry` registry; the
        cache counts ``cache_hits`` / ``cache_misses`` / ``cache_stores`` /
        ``cache_evictions`` into it (the serve ``/metrics`` endpoint exposes
        them).
    remote:
        Optional remote tier (a :class:`repro.dist.RemoteByteStore`): misses
        fall through to it and stores write through, so every serving host
        sharing one byte-store server shares one warm explanation set.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_memory_bytes: Optional[int] = DEFAULT_MEMORY_BYTES,
        max_disk_bytes: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        remote: Optional[object] = None,
    ) -> None:
        self.directory = directory
        self.remote = remote
        self._store = TieredByteStore(
            directory=directory,
            suffix=_SUFFIX,
            max_memory_bytes=max_memory_bytes,
            max_disk_bytes=max_disk_bytes,
            remote=remote,
        )
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    def get(self, key: str) -> Optional[bytes]:
        """The stored bytes for ``key`` (``None`` on miss); counts telemetry.

        Besides the hit/miss counters, the lookup latency is recorded into a
        per-tier ``cache_get[...]`` histogram (memory/disk/remote/miss) and,
        for traced requests, a ``cache.get`` span carrying the serving tier.
        """
        with span("cache.get") as ctx:
            started = time.perf_counter()
            blob, tier = self._store.get_with_tier(key)
            self.telemetry.timer(f"cache_get[{tier}]").add(time.perf_counter() - started)
            if ctx is not None:
                ctx.attrs["tier"] = tier
        if blob is None:
            self.telemetry.increment("cache_misses")
        else:
            self.telemetry.increment("cache_hits")
        return blob

    def put(self, key: str, blob: bytes) -> None:
        """Store ``blob`` under ``key`` in both tiers; enforces the bounds."""
        before = self._store.evictions
        with span("cache.put", size=len(blob)):
            self._store.put(key, blob)
        evicted = self._store.evictions - before
        self.telemetry.increment("cache_stores")
        if evicted:
            self.telemetry.increment("cache_evictions", evicted)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)
