"""Online explanation serving: artifact store, micro-batching, caching, HTTP.

The paper's pitch is that dCAM makes multivariate-series explanation cheap
enough for interactive use; this package is the online path that cashes that
in.  A trained classifier registered in a :class:`ModelArtifactStore` is
served by an :class:`ExplanationService` that

* lazily loads and warm-caches model artifacts,
* coalesces concurrent classify/explain requests into single batched engine
  calls via a dynamic :class:`MicroBatcher` with one flush worker per
  (model, kind) group (responses are byte-identical to per-request
  execution — see :mod:`repro.serve.engine`),
* adapts its flush size and wait bound to the observed load through a
  pluggable :class:`BatchPolicy` (:mod:`repro.serve.policy`) and sheds
  load with bounded per-group queues (:class:`QueueFullError` → HTTP 429
  + ``Retry-After``) once an admission watermark is hit,
* answers repeated work from a content-addressed :class:`ExplanationCache`
  (memory + disk tiers, LRU-bounded), and
* exposes everything over a stdlib JSON/HTTP server (:mod:`repro.serve.http`).

Command-line entry points: ``python -m repro export-model`` registers a
trained model into a store; ``python -m repro serve`` serves one.
"""

from .batcher import MicroBatcher, QueueFullError
from .cache import ExplanationCache, content_key, response_cache_key, stream_window_key
from .engine import ParityReport, probe_batch_parity, serve_logits
from .http import ServiceHTTPServer, make_server, run_server, serve_in_background
from .policy import (
    AdaptiveBatchPolicy,
    BatchPolicy,
    FlushDecision,
    StaticBatchPolicy,
)
from .service import (
    ClassifyResponse,
    ExplainResponse,
    ExplanationService,
    ServeConfig,
)
from .store import ModelArtifact, ModelArtifactStore

__all__ = [
    "ModelArtifact",
    "ModelArtifactStore",
    "ExplanationCache",
    "content_key",
    "response_cache_key",
    "stream_window_key",
    "MicroBatcher",
    "QueueFullError",
    "BatchPolicy",
    "FlushDecision",
    "StaticBatchPolicy",
    "AdaptiveBatchPolicy",
    "ExplanationService",
    "ServeConfig",
    "ClassifyResponse",
    "ExplainResponse",
    "ParityReport",
    "probe_batch_parity",
    "serve_logits",
    "ServiceHTTPServer",
    "make_server",
    "serve_in_background",
    "run_server",
]
