"""Stdlib HTTP front-end for the explanation service.

A thin JSON-over-HTTP adapter on :class:`~repro.serve.service.ExplanationService`
built on :class:`http.server.ThreadingHTTPServer` (one thread per connection,
so concurrent clients genuinely reach the micro-batcher concurrently — no
third-party web framework needed).

Routes
------
``GET /healthz``
    Liveness: ``{"status": "ok", "models": N}``.
``GET /models``
    Artifact records of every registered model.
``GET /metrics``
    The shared telemetry snapshot (request / batch / cache counters plus
    latency-histogram summaries) as JSON by default; Prometheus text
    exposition when the client sends ``Accept: text/plain`` (content
    negotiation — see :mod:`repro.obs.exposition`).
``GET /trace``
    The bounded ring of finished trace spans (sampled requests only; see
    :mod:`repro.obs.tracing`), as ``{"spans": [...]}``.
``POST /classify``
    ``{"model": name, "instance": [[...], ...]}`` →
    logits, prediction and class probabilities.
``POST /explain``
    ``{"model": name, "instance": [[...], ...], "class_id"?, "k"?, "seed"?}``
    → the ``(D, n)`` heatmap plus the dCAM success ratio where applicable.

Errors map to JSON bodies: 400 for malformed requests, 404 for unknown
routes/models, **429 + ``Retry-After``** when a model/kind queue is over its
admission watermark (the load-shedding backpressure signal — see
:class:`repro.serve.batcher.QueueFullError`), 500 otherwise.  Arrays travel
as nested JSON lists; numbers round-trip exactly (``repr``-based float
serialisation on both sides).

Shutdown is a graceful drain: :func:`run_server` stops accepting
connections, then closes the service, whose batcher flushes every queued
request (bounded by ``ServeConfig.drain_timeout_s``) before the process
exits.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..obs.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_requested,
    render_prometheus,
    spans_to_json,
)
from ..obs.tracing import maybe_trace
from .batcher import QueueFullError
from .service import ExplanationService


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handler threads."""

    daemon_threads = True
    # The stdlib default listen backlog (5) resets connections when many
    # clients connect in one burst; admission control belongs to the
    # micro-batcher's bounded queues, not the TCP accept queue.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: ExplanationService) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.service = service


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # HTTP/1.1 keep-alive: every response carries Content-Length, so clients
    # can reuse connections instead of paying a TCP handshake per request —
    # load-bearing under heavy traffic (see benchmarks/bench_serve_load.py).
    protocol_version = "HTTP/1.1"
    # Responses go out as two writes (header block, then body); with Nagle
    # enabled the body segment stalls behind the client's delayed ACK —
    # ~40ms added to every keep-alive response.
    disable_nagle_algorithm = True

    # Quieter than the default stderr-per-request logging; the service's
    # telemetry counters are the intended observability surface.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send_json(
        self, status: int, payload: Dict[str, Any], extra_headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        try:
            if self.path == "/healthz":
                self._send_json(200, service.healthz())
            elif self.path == "/metrics":
                if prometheus_requested(self.headers.get("Accept")):
                    body = render_prometheus(service.telemetry).encode("utf-8")
                    self._send_text(200, body, PROMETHEUS_CONTENT_TYPE)
                else:
                    self._send_json(200, service.metrics())
            elif self.path == "/trace":
                self._send_json(200, {"spans": spans_to_json(service.tracer.ring.spans())})
            elif self.path == "/models":
                self._send_json(200, {"models": service.models()})
            else:
                self._send_json(404, {"error": f"unknown route {self.path!r}"})
        except Exception as error:  # noqa: BLE001 - boundary of the process
            self._send_json(500, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        try:
            payload = self._read_json()
            if self.path == "/classify":
                self._send_json(200, self._timed(service, "classify", payload, self._classify))
            elif self.path == "/explain":
                self._send_json(200, self._timed(service, "explain", payload, self._explain))
            else:
                self._send_json(404, {"error": f"unknown route {self.path!r}"})
        except QueueFullError as error:
            # Load-shedding backpressure: the request was never admitted, so
            # the client can safely retry once the queue drains.
            retry_after = max(1, math.ceil(error.retry_after_s))
            self._send_json(
                429,
                {"error": str(error), "retry_after_s": error.retry_after_s},
                extra_headers={"Retry-After": str(retry_after)},
            )
        except KeyError as error:
            self._send_json(404, {"error": str(error.args[0]) if error.args else str(error)})
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - boundary of the process
            self._send_json(500, {"error": str(error)})

    def _timed(self, service: ExplanationService, kind: str, payload: Dict[str, Any], handler):
        """Time one request into ``http_<kind>`` and open its sampled root span.

        The handler-level histogram sees every outcome (including errors and
        shed requests); the root span is only recorded for sampled requests
        and never alters the response bytes.
        """
        started = time.perf_counter()
        try:
            with maybe_trace(service.tracer, f"http./{kind}", model=str(payload.get("model"))):
                return handler(service, payload)
        finally:
            service.telemetry.timer(f"http_{kind}").add(time.perf_counter() - started)

    @staticmethod
    def _required(payload: Dict[str, Any], *names: str) -> None:
        missing = [name for name in names if name not in payload]
        if missing:
            raise ValueError(f"missing request field(s): {', '.join(missing)}")

    def _classify(self, service: ExplanationService, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._required(payload, "model", "instance")
        response = service.classify(payload["model"], payload["instance"])
        return {
            "model": response.model,
            "predicted": response.predicted,
            "logits": response.logits.tolist(),
            "probabilities": response.probabilities.tolist(),
            "cached": response.cached,
        }

    def _explain(self, service: ExplanationService, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._required(payload, "model", "instance")
        response = service.explain(
            payload["model"],
            payload["instance"],
            class_id=payload.get("class_id"),
            k=payload.get("k"),
            seed=payload.get("seed"),
        )
        return {
            "model": response.model,
            "family": response.family,
            "class_id": response.class_id,
            "heatmap": response.heatmap.tolist(),
            "success_ratio": response.success_ratio,
            "k": response.k,
            "seed": response.seed,
            "cached": response.cached,
        }


def make_server(service: ExplanationService, host: str = "127.0.0.1", port: int = 0) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer` (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service)


def serve_in_background(
    service: ExplanationService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start a server thread; returns ``(server, thread)`` — callers own shutdown."""
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread


def run_server(service: ExplanationService, host: str, port: int, announce=None) -> None:
    """Blocking ``serve_forever`` with Ctrl-C shutdown (the CLI entry point)."""
    server = make_server(service, host, port)
    if announce is not None:
        actual_host, actual_port = server.server_address[:2]
        announce(actual_host, actual_port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
