"""Model artifact store: persist trained classifiers, reload them by name.

One artifact is a directory ``<store>/<name>/`` holding

* ``weights.npz`` — the full trained state via
  :func:`repro.nn.serialization.save_state_dict` (parameters, BatchNorm
  running statistics and the train/eval mode, so a reload reproduces
  ``logits`` and explanation outputs bit for bit), and
* ``artifact.json`` — everything needed to rebuild and serve the model:
  registry model name, problem shape, constructor kwargs, the declared
  ``explainer_family``, the content :func:`~repro.nn.serialization.state_hash`
  of the saved state, plus free-form metadata (dataset fingerprint, scale,
  batch-parity probe results, ...).

Loads are lazy and warm-cached: the first request for a model pays the
rebuild + weight load, subsequent requests reuse the live instance.  The
state hash recorded at registration is verified on load, so a corrupted or
hand-edited artifact fails loudly instead of serving wrong explanations — and
the same hash is the model component of every explanation-cache key.

With an optional *remote* byte store (:class:`repro.dist.RemoteByteStore`),
registration also publishes the artifact fleet-wide — metadata under
``serve-artifact:<name>``, weights content-addressed under
``serve-weights:<state_hash>``, plus a ``serve-artifact-index`` name list —
and a local miss fetches and materialises the artifact from the remote, so a
model exported on one host is servable on every host.  Weights land on disk
*before* ``artifact.json`` and the load-time state-hash check still runs, so
a torn fetch is invisible and corrupt remote bytes fail loudly.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..models.base import BaseClassifier
from ..models.registry import create_model
from ..nn.serialization import load_state_dict, save_state_dict, state_hash

_WEIGHTS_FILE = "weights.npz"
_ARTIFACT_FILE = "artifact.json"
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_REMOTE_ARTIFACT_PREFIX = "serve-artifact:"
_REMOTE_WEIGHTS_PREFIX = "serve-weights:"
_REMOTE_INDEX_KEY = "serve-artifact-index"


@dataclass
class ModelArtifact:
    """Metadata of one stored model (the parsed ``artifact.json``)."""

    name: str
    model_name: str
    n_dimensions: int
    length: int
    n_classes: int
    model_kwargs: Dict[str, Any] = field(default_factory=dict)
    explainer_family: Optional[str] = None
    state_hash: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "model_name": self.model_name,
            "n_dimensions": self.n_dimensions,
            "length": self.length,
            "n_classes": self.n_classes,
            "model_kwargs": self.model_kwargs,
            "explainer_family": self.explainer_family,
            "state_hash": self.state_hash,
            "metadata": self.metadata,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ModelArtifact":
        return cls(
            name=payload["name"],
            model_name=payload["model_name"],
            n_dimensions=int(payload["n_dimensions"]),
            length=int(payload["length"]),
            n_classes=int(payload["n_classes"]),
            model_kwargs=dict(payload.get("model_kwargs") or {}),
            explainer_family=payload.get("explainer_family"),
            state_hash=payload.get("state_hash", ""),
            metadata=dict(payload.get("metadata") or {}),
        )


class ModelArtifactStore:
    """Directory-backed registry of trained models with a warm load cache."""

    def __init__(self, directory: str, remote: Optional[Any] = None) -> None:
        self.directory = directory
        self.remote = remote
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._loaded: Dict[str, BaseClassifier] = {}
        self._artifacts: Dict[str, ModelArtifact] = {}

    # ------------------------------------------------------------------
    # Paths / listing
    # ------------------------------------------------------------------
    def _artifact_dir(self, name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid artifact name {name!r}; use letters, digits, '.', '_', '-'"
            )
        return os.path.join(self.directory, name)

    def list_names(self) -> List[str]:
        """Registered artifact names (sorted): local ∪ remote index."""
        names = {
            name
            for name in os.listdir(self.directory)
            if os.path.isfile(os.path.join(self.directory, name, _ARTIFACT_FILE))
        }
        if self.remote is not None:
            blob = self.remote.get(_REMOTE_INDEX_KEY)
            if blob:
                try:
                    names.update(str(name) for name in json.loads(blob.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    pass  # a bad index never blocks local serving
        return sorted(names)

    def __contains__(self, name: str) -> bool:
        try:
            path = self._artifact_dir(name)
        except ValueError:
            return False
        if os.path.isfile(os.path.join(path, _ARTIFACT_FILE)):
            return True
        return self.remote is not None and self.remote.contains(_REMOTE_ARTIFACT_PREFIX + name)

    # ------------------------------------------------------------------
    # Register / load
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: BaseClassifier,
        *,
        model_name: str,
        metadata: Optional[Dict[str, Any]] = None,
        overwrite: bool = False,
    ) -> ModelArtifact:
        """Persist ``model`` under ``name`` and return its artifact record.

        ``model_name`` is the :mod:`repro.models.registry` key needed to
        rebuild the architecture; constructor kwargs beyond the problem shape
        must be supplied via ``metadata["model_kwargs"]``.
        """
        directory = self._artifact_dir(name)
        if os.path.exists(os.path.join(directory, _ARTIFACT_FILE)) and not overwrite:
            raise FileExistsError(
                f"artifact {name!r} already exists (pass overwrite=True to replace)"
            )
        metadata = dict(metadata or {})
        model_kwargs = dict(metadata.pop("model_kwargs", {}))
        artifact = ModelArtifact(
            name=name,
            model_name=model_name,
            n_dimensions=model.n_dimensions,
            length=model.length,
            n_classes=model.n_classes,
            model_kwargs=model_kwargs,
            explainer_family=getattr(model, "explainer_family", None),
            state_hash=state_hash(model),
            metadata=metadata,
        )
        os.makedirs(directory, exist_ok=True)
        save_state_dict(model, os.path.join(directory, _WEIGHTS_FILE))
        with open(os.path.join(directory, _ARTIFACT_FILE), "w", encoding="utf-8") as handle:
            json.dump(artifact.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        with self._lock:
            self._loaded.pop(name, None)
            self._artifacts[name] = artifact
        self._publish_remote(artifact)
        return artifact

    def _publish_remote(self, artifact: ModelArtifact) -> None:
        """Best-effort fleet publication (a down remote never fails a register)."""
        if self.remote is None:
            return
        directory = self._artifact_dir(artifact.name)
        with open(os.path.join(directory, _WEIGHTS_FILE), "rb") as handle:
            weights = handle.read()
        with open(os.path.join(directory, _ARTIFACT_FILE), "rb") as handle:
            artifact_json = handle.read()
        # Weights first: a peer that sees the artifact record must find them.
        self.remote.put(_REMOTE_WEIGHTS_PREFIX + artifact.state_hash, weights)
        self.remote.put(_REMOTE_ARTIFACT_PREFIX + artifact.name, artifact_json)
        # Preferred path: the server merges the name into the index under its
        # own lock (the ``index-update`` op), so concurrent registers from
        # different hosts cannot drop each other's names.
        index_update = getattr(self.remote, "index_update", None)
        if index_update is not None and index_update(_REMOTE_INDEX_KEY, [artifact.name]) is not None:
            return
        # Fallback against old servers (or a plain byte-store without the
        # op): client-side read-modify-write, which is last-write-wins;
        # list_names unions the index with the local directory, so a lost
        # update only hides a *remote* peer's name from listings — its
        # artifact/weights blobs stay fetchable by name.
        names = set(self.list_names())
        names.add(artifact.name)
        self.remote.put(
            _REMOTE_INDEX_KEY, json.dumps(sorted(names)).encode("utf-8")
        )

    def _fetch_remote(self, name: str) -> bool:
        """Materialise ``name`` from the remote store; True when it landed."""
        if self.remote is None:
            return False
        artifact_blob = self.remote.get(_REMOTE_ARTIFACT_PREFIX + name)
        if artifact_blob is None:
            return False
        try:
            artifact = ModelArtifact.from_json(json.loads(artifact_blob.decode("utf-8")))
        except (ValueError, KeyError, UnicodeDecodeError):
            return False
        weights = self.remote.get(_REMOTE_WEIGHTS_PREFIX + artifact.state_hash)
        if weights is None:
            return False
        directory = self._artifact_dir(name)
        os.makedirs(directory, exist_ok=True)
        # Weights before artifact.json: ``__contains__``/``list_names`` treat
        # the JSON file as the commit record, so a fetch torn between the two
        # writes leaves the artifact invisible rather than half-servable.
        with open(os.path.join(directory, _WEIGHTS_FILE), "wb") as handle:
            handle.write(weights)
        with open(os.path.join(directory, _ARTIFACT_FILE), "wb") as handle:
            handle.write(artifact_blob)
        return True

    def artifact(self, name: str) -> ModelArtifact:
        """The metadata record for ``name`` (cached after first read).

        A local miss falls back to the remote store when one is configured,
        materialising the artifact's files on this host first.
        """
        with self._lock:
            cached = self._artifacts.get(name)
        if cached is not None:
            return cached
        path = os.path.join(self._artifact_dir(name), _ARTIFACT_FILE)
        if not os.path.isfile(path) and not self._fetch_remote(name):
            raise KeyError(
                f"unknown model artifact {name!r}; registered: {self.list_names()}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            artifact = ModelArtifact.from_json(json.load(handle))
        with self._lock:
            self._artifacts[name] = artifact
        return artifact

    def load(self, name: str) -> BaseClassifier:
        """The live model for ``name`` — loaded lazily, then warm-cached.

        The loaded state's :func:`~repro.nn.serialization.state_hash` must
        match the hash recorded at registration; a mismatch means the weights
        file was corrupted or replaced and raises :class:`ValueError`.
        """
        with self._lock:
            model = self._loaded.get(name)
        if model is not None:
            return model
        artifact = self.artifact(name)
        model = create_model(
            artifact.model_name,
            artifact.n_dimensions,
            artifact.length,
            artifact.n_classes,
            **artifact.model_kwargs,
        )
        load_state_dict(model, os.path.join(self._artifact_dir(name), _WEIGHTS_FILE))
        loaded_hash = state_hash(model)
        if artifact.state_hash and loaded_hash != artifact.state_hash:
            raise ValueError(
                f"artifact {name!r} failed its integrity check: state hash "
                f"{loaded_hash[:12]}… does not match the registered "
                f"{artifact.state_hash[:12]}…"
            )
        with self._lock:
            # Two threads may race the first load; both built identical
            # models from identical bytes, so either instance may win.
            model = self._loaded.setdefault(name, model)
        return model

    def evict(self, name: str) -> None:
        """Drop the warm-cached instance (the artifact files stay)."""
        with self._lock:
            self._loaded.pop(name, None)
