"""Coalescing-invariant execution engine behind the serving facade.

The micro-batching scheduler's contract is that a response does not depend on
*which other requests happened to share its flush* — the bytes a client gets
for a request are the same whether it was executed alone or coalesced into a
batch.  That is stricter than it sounds: the NumPy substrate's BLAS-backed
matrix multiplications select kernels by operand shape, so a dense layer
evaluated at batch width 1 can differ from the same row inside a width-8
batch by a few ulps.  This module therefore pins one *canonical execution*
per request kind and family — the repository's batched inference engines,
evaluated identically whether a flush holds one request or many:

* **classify** — for GAP-headed architectures, one batched graph-free
  ``features()`` forward (whose per-row bits do not depend on batch width for
  the served architectures — verified per artifact by
  :func:`probe_batch_parity`), the per-row global average, and an ``einsum``
  dense head (``einsum`` contracts each row independently at every width,
  unlike BLAS ``matmul``; it differs from :meth:`BaseClassifier.logits` by
  BLAS kernel rounding only, ≤ 1e-10, pinned by tests).  Other architectures
  (the recurrent baselines, MTEX-CNN) are evaluated one instance at a time
  via :meth:`~repro.models.base.BaseClassifier.logits`.
* **explain / cam** — one :meth:`CAMExplainer.explain_batch` call, the
  repo's micro-batched CAM engine (one graph-free ``features()`` forward per
  flush).  Bit-identical across coalescing patterns; agrees with the
  per-instance ``Explainer.explain`` graph path to float round-off (≤ 1e-10).
* **explain / dcam** — each request carries its own permutation seed; the
  permutations are drawn up front and pushed through the cross-instance
  micro-batched pipeline (:meth:`DCAMExplainer.explain_batch` with explicit
  ``permutations``), whose forward passes run at the same micro-batch quantum
  as the per-request path — responses are bit-identical to
  ``Explainer.explain`` with the request's seeded generator.
* **explain / gradcam** — one :meth:`GradCAMExplainer.explain_batch` call:
  MTEX-grad's backward is an explicit VJP (:func:`repro.core.gradcam.
  mtex_vjp_maps`) whose forward runs under ``inference_mode`` and whose
  gradient kernels touch rows independently (einsum contractions, masks, the
  per-row col2im scatter) — no width-sensitive BLAS matmul anywhere, so a
  coalesced flush produces the same bytes as per-request execution (probed
  per artifact like the other families).

:func:`probe_batch_parity` verifies the classify/explain coalescing
invariance empirically on random instances at registration time; the
scheduler falls back to per-request execution for any artifact
(architecture × BLAS build) whose probe fails, trading throughput for
exactness instead of serving coalescing-dependent bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.input_transform import random_permutations
from ..explain.registry import get_explainer
from ..models.base import BaseClassifier
from ..nn import inference_mode

#: Instances per probe; every coalesced width from 2 up to this must agree
#: with width-1 execution bit for bit.
_PROBE_INSTANCES = 6
#: Micro-batch width used while probing (matches the serving default).
DEFAULT_PROBE_BATCH_SIZE = 32
#: Permutations per instance in the dCAM probe (kept small — the probe runs
#: at registration time, not per request).
_PROBE_K = 4


@dataclass
class ExplainOutput:
    """One explain result as assembled by the engine (pre-serialisation)."""

    heatmap: np.ndarray
    class_id: int
    family: str
    success_ratio: Optional[float] = None


@dataclass
class ClassifyOutput:
    """One classify result: raw logits plus the argmax prediction."""

    logits: np.ndarray
    predicted: int


def has_gap_head(model: BaseClassifier) -> bool:
    """Whether ``model`` exposes the shared GAP + dense head contract."""
    return bool(getattr(model, "fused_head", False)) and all(
        hasattr(model, attribute) for attribute in ("features", "gap", "classifier")
    )


def serve_logits(model: BaseClassifier, X: np.ndarray) -> np.ndarray:
    """Canonical width-invariant logits of a request batch ``(B, D, n)``.

    For GAP-headed models this agrees with :meth:`BaseClassifier.logits` to
    float round-off (≤ 1e-10; the dense head is contracted by ``einsum``
    instead of BLAS ``matmul`` so every row's bits are independent of the
    batch width).  Other architectures fall back to per-instance
    :meth:`~repro.models.base.BaseClassifier.logits`, which is trivially
    width-invariant.
    """
    X = np.asarray(X, dtype=getattr(model, "compute_dtype", np.float64))
    if not has_gap_head(model):
        return np.concatenate([model.logits(X[index : index + 1]) for index in range(len(X))])
    was_training = model.training
    try:
        model.eval()
        with inference_mode():
            features = model.features(model.prepare_input(X)).data
        # ascontiguousarray: the mean's output layout varies with the conv
        # output's (width-dependent) layout, and einsum's SIMD accumulation
        # is stride-sensitive — canonicalising the strides keeps every row's
        # bits independent of the batch width.
        pooled = np.ascontiguousarray(
            features.mean(axis=tuple(range(2, features.ndim)))  # (B, F)
        )
        weight = np.ascontiguousarray(model.classifier.weight.data)  # (C, F)
        logits = np.einsum("bf,cf->bc", pooled, weight)
        bias = getattr(model.classifier, "bias", None)
        if bias is not None:
            logits = logits + bias.data
        return logits
    finally:
        if was_training:
            model.train()


def classify_outputs(model: BaseClassifier, X: np.ndarray) -> List[ClassifyOutput]:
    """Per-request classify outputs for a coalesced batch."""
    logits = serve_logits(model, X)
    return [
        ClassifyOutput(logits=logits[index], predicted=int(logits[index].argmax()))
        for index in range(len(logits))
    ]


def _cam_outputs(
    model: BaseClassifier, X: np.ndarray, class_ids: Sequence[int], batch_size: int
) -> List[ExplainOutput]:
    """CAM for a coalesced batch via the repo's ``explain_batch`` engine.

    One graph-free ``features()`` forward per micro-batch; each row's bits
    are independent of the batch width (probed per artifact), so a lone
    request and a coalesced one receive identical bytes.
    """
    explainer = get_explainer(model, batch_size=batch_size, keep_details=False)
    explanations = explainer.explain_batch(X, class_ids)
    return [
        ExplainOutput(heatmap=explanation.heatmap, class_id=explanation.class_id, family="cam")
        for explanation in explanations
    ]


def _gradcam_outputs(
    model: BaseClassifier, X: np.ndarray, class_ids: Sequence[int], batch_size: int
) -> List[ExplainOutput]:
    """MTEX-grad for a coalesced batch via the graph-free VJP batch engine.

    One ``inference_mode`` forward plus one explicit backward per micro-batch
    (:func:`repro.core.gradcam.mtex_vjp_maps`); every kernel is per-row
    independent, so the bytes match per-request execution at any coalescing
    width (probed per artifact).
    """
    explainer = get_explainer(model, batch_size=batch_size, keep_details=False)
    explanations = explainer.explain_batch(X, class_ids)
    return [
        ExplainOutput(
            heatmap=explanation.heatmap, class_id=explanation.class_id, family="gradcam"
        )
        for explanation in explanations
    ]


def draw_request_permutations(n_dimensions: int, k: int, seed: int) -> List[np.ndarray]:
    """The permutation sequence a dCAM request's ``(k, seed)`` denotes.

    Shared by the coalesced executor and the per-request reference: both
    paths explain with *these* permutations, which is what makes batched
    responses bit-identical to ``explain(series, class_id)`` with
    ``rng=np.random.default_rng(seed)``.
    """
    return random_permutations(n_dimensions, k, np.random.default_rng(seed))


def _dcam_outputs(
    model: BaseClassifier,
    X: np.ndarray,
    class_ids: Sequence[int],
    ks: Sequence[int],
    seeds: Sequence[int],
    batch_size: int,
    cache=None,
    model_hash: Optional[str] = None,
) -> List[ExplainOutput]:
    """dCAM for a coalesced batch of requests with per-request ``(k, seed)``."""
    permutations = [
        draw_request_permutations(X.shape[1], int(k), int(seed)) for k, seed in zip(ks, seeds)
    ]
    explainer = get_explainer(
        model, batch_size=batch_size, keep_details=False, cache=cache, model_hash=model_hash
    )
    explanations = explainer.explain_batch(X, class_ids, permutations=permutations)
    return [
        ExplainOutput(
            heatmap=explanation.heatmap,
            class_id=explanation.class_id,
            family="dcam",
            success_ratio=explanation.success_ratio,
        )
        for explanation in explanations
    ]


def explain_outputs(
    model: BaseClassifier,
    family: str,
    X: np.ndarray,
    class_ids: Sequence[int],
    ks: Sequence[int],
    seeds: Sequence[int],
    batch_size: int,
    cache=None,
    model_hash: Optional[str] = None,
) -> List[ExplainOutput]:
    """Dispatch a coalesced explain batch to its family executor."""
    X = np.asarray(X, dtype=getattr(model, "compute_dtype", np.float64))
    if family == "cam":
        return _cam_outputs(model, X, class_ids, batch_size)
    if family == "gradcam":
        return _gradcam_outputs(model, X, class_ids, batch_size)
    if family == "dcam":
        return _dcam_outputs(
            model, X, class_ids, ks, seeds, batch_size, cache=cache, model_hash=model_hash
        )
    # Internal invariant, not a client lookup failure (the HTTP layer maps
    # KeyError to 404): the family came from a registered artifact.
    raise RuntimeError(f"no serve executor for explainer family {family!r}")


def per_request_explain(
    model: BaseClassifier,
    family: str,
    series: np.ndarray,
    class_id: int,
    k: int,
    seed: int,
    batch_size: int,
    cache=None,
    model_hash: Optional[str] = None,
) -> ExplainOutput:
    """The single-request reference path (used for fallback and probing).

    One request through the same canonical execution a coalesced flush uses:
    the family batch engine at width 1.  For dCAM this equals
    :meth:`Explainer.explain` with the request's seeded permutation draw bit
    for bit; for CAM and grad-CAM it is the batch engine at width 1, which
    agrees with the per-instance recorded-graph paths to float round-off
    (≤ 1e-10).
    """
    series = np.asarray(series, dtype=getattr(model, "compute_dtype", np.float64))
    if family == "dcam":
        explainer = get_explainer(
            model, batch_size=batch_size, keep_details=False, cache=cache, model_hash=model_hash
        )
        permutations = draw_request_permutations(series.shape[0], int(k), int(seed))
        explanation = explainer.explain(series, int(class_id), permutations=permutations)
        return ExplainOutput(
            heatmap=explanation.heatmap,
            class_id=int(class_id),
            family=family,
            success_ratio=explanation.success_ratio,
        )
    return explain_outputs(
        model,
        family,
        series[None],
        [int(class_id)],
        [int(k)],
        [int(seed)],
        batch_size,
        cache=cache,
        model_hash=model_hash,
    )[0]


@dataclass
class ParityReport:
    """Result of :func:`probe_batch_parity` (stored in artifact metadata)."""

    classify: bool
    explain: Optional[bool]  # None when the model declares no explainer family

    def to_json(self) -> Dict[str, Optional[bool]]:
        return {"classify": self.classify, "explain": self.explain}


def probe_batch_parity(model: BaseClassifier, random_state: int = 0) -> ParityReport:
    """Empirically verify that coalesced execution is bit-exact for ``model``.

    Runs the canonical executors on a few random instances both coalesced and
    one request at a time and compares the bytes.  The result is recorded in
    the artifact metadata at registration; the scheduler only coalesces
    request kinds whose probe passed, so a width-sensitive architecture is
    served per-request (slower, never wrong).
    """
    rng = np.random.default_rng(random_state)
    X = rng.standard_normal((_PROBE_INSTANCES, model.n_dimensions, model.length))
    class_ids = [index % model.n_classes for index in range(_PROBE_INSTANCES)]

    singles = np.concatenate(
        [serve_logits(model, X[index : index + 1]) for index in range(len(X))]
    )
    classify_ok = True
    for width in range(2, _PROBE_INSTANCES + 1):
        batched = np.concatenate(
            [
                serve_logits(model, X[start : start + width])
                for start in range(0, _PROBE_INSTANCES, width)
            ]
        )
        if not np.array_equal(batched, singles):
            classify_ok = False
            break

    family = getattr(model, "explainer_family", None)
    if family is None:
        return ParityReport(classify=classify_ok, explain=None)

    ks = [_PROBE_K] * _PROBE_INSTANCES
    seeds = list(range(_PROBE_INSTANCES))
    references = [
        per_request_explain(
            model,
            family,
            X[index],
            class_ids[index],
            ks[index],
            seeds[index],
            batch_size=DEFAULT_PROBE_BATCH_SIZE,
        )
        for index in range(_PROBE_INSTANCES)
    ]
    explain_ok = True
    for width in range(2, _PROBE_INSTANCES + 1):
        coalesced = []
        for start in range(0, _PROBE_INSTANCES, width):
            stop = min(start + width, _PROBE_INSTANCES)
            coalesced.extend(
                explain_outputs(
                    model,
                    family,
                    X[start:stop],
                    class_ids[start:stop],
                    ks[start:stop],
                    seeds[start:stop],
                    batch_size=DEFAULT_PROBE_BATCH_SIZE,
                )
            )
        for output, reference in zip(coalesced, references):
            if not np.array_equal(output.heatmap, reference.heatmap):
                explain_ok = False
            elif output.success_ratio != reference.success_ratio:
                explain_ok = False
        if not explain_ok:
            break
    return ParityReport(classify=classify_ok, explain=explain_ok)
