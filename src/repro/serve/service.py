"""The serving facade: cache → micro-batcher → engine, behind two methods.

:class:`ExplanationService` is the in-process API the HTTP layer, the CLI and
the benchmarks all talk to:

>>> service = ExplanationService(store)                      # doctest: +SKIP
>>> service.classify("dcnn-tiny", series).predicted          # doctest: +SKIP
>>> service.explain("dcnn-tiny", series, class_id=1).heatmap # doctest: +SKIP

A request first consults the content-addressed response cache (keyed on the
artifact's state hash plus everything in the request that determines the
bytes of the answer), then joins the dynamic micro-batcher, whose flushes run
the coalescing-invariant executors of :mod:`repro.serve.engine`.  Artifacts
whose registration-time parity probe failed for a request kind are executed
one request at a time inside the flush — exactness always wins over
throughput.  All counters (requests, batches, cache traffic, engine time)
accumulate in one shared :class:`~repro.telemetry.Telemetry` registry that
:meth:`metrics` (and the HTTP ``/metrics`` endpoint) snapshots.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..explain.base import DEFAULT_K
from ..obs.config import ObsConfig
from ..obs.tracing import Tracer, span
from ..telemetry import Telemetry
from . import engine
from .batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_MS,
    MicroBatcher,
    group_key_of,
)
from .cache import ExplanationCache, response_cache_key
from .policy import AdaptiveBatchPolicy, BatchPolicy, StaticBatchPolicy
from .store import ModelArtifact, ModelArtifactStore

#: Distinguishes "no timeout argument" from an explicit ``timeout=None``.
_UNSET = object()


@dataclass
class ServeConfig:
    """Knobs of one service instance."""

    #: Flush threshold of the micro-batcher; 1 = serial per-request dispatch.
    #: Under ``batch_policy="adaptive"`` this is the *initial* flush size the
    #: policy starts walking from.
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    #: Milliseconds the oldest queued request may wait for companions.  Under
    #: ``batch_policy="adaptive"`` this is the initial wait bound.
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS
    #: Batching policy: ``"static"`` (fixed flush bounds, the reference
    #: behaviour) or ``"adaptive"`` (feedback-driven flush size / wait from
    #: observed queue depth and flush latency — see
    #: :class:`repro.serve.policy.AdaptiveBatchPolicy`).  Either way response
    #: bytes are identical; the policy only moves scheduling knobs.
    batch_policy: str = "static"
    #: Hard lower bound of the adaptive policy's flush size.
    min_batch_size: int = 1
    #: Hard upper bound of the adaptive policy's flush size.
    max_adaptive_batch_size: int = 64
    #: Hard lower bound (ms) of the adaptive policy's wait bound.
    min_wait_ms: float = 0.0
    #: Hard upper bound (ms) of the adaptive policy's wait bound.
    max_adaptive_wait_ms: float = 8.0
    #: Soft ceiling (ms) on the adaptive policy's smoothed per-flush wall
    #: clock; sustained flushes above it shrink the batch to bound tail
    #: latency.
    policy_latency_budget_ms: float = 250.0
    #: Consecutive same-direction feedback signals the adaptive policy needs
    #: before stepping a knob (hysteresis against scheduler noise).
    policy_hysteresis: int = 3
    #: Per-(model, kind) bound on in-flight requests (queued + executing).
    #: Submits over it shed with :class:`repro.serve.batcher.QueueFullError`
    #: (HTTP 429 + ``Retry-After``); ``None`` disables load-shedding.
    max_queue_depth: Optional[int] = 512
    #: Global bound on in-flight requests across every (model, kind) group;
    #: ``None`` (the default) disables it.  Priority-aware: cheap classify
    #: requests may fill the whole bound, expensive explain requests shed
    #: once the total reaches ``shed_watermark`` of it — under fleet-wide
    #: pressure ``/classify`` outlives ``/explain``.
    max_total_depth: Optional[int] = None
    #: Fraction of ``max_total_depth`` where explain (priority-0) submits
    #: start shedding.
    shed_watermark: float = 0.75
    #: Seconds :meth:`ExplanationService.close` waits for queued requests to
    #: drain before failing the remainder fast; ``None`` waits indefinitely.
    drain_timeout_s: Optional[float] = 30.0
    #: Micro-batch width of the underlying engines (cubes per forward for
    #: dCAM); a speed / peak-memory knob that never changes response bytes.
    engine_batch_size: int = 32
    #: Default permutation count for dCAM explains that do not send ``k``.
    default_k: int = DEFAULT_K
    #: Largest accepted per-request ``k``: a request's permutation draw and
    #: forward work scale with ``k``, so an unbounded value would let one
    #: client stall the group's flush worker (the paper never exceeds 100).
    max_k: int = 4096
    #: Default permutation seed for explains that do not send ``seed``.
    default_seed: int = 0
    #: Re-verify the batch-parity probe on this host before coalescing.
    #: Parity is a property of architecture × BLAS build, so a report
    #: recorded at registration does not transfer between machines; the
    #: local probe (sub-second) runs once per artifact at first flush.
    reprobe_parity: bool = True
    #: Serving compute precision: "float64" (the reference — responses are
    #: bit-identical to offline evaluation) or "float32" (the opt-in fast
    #: tier — loaded models are cast once and every forward/VJP kernel runs
    #: in single precision; responses agree with float64 to documented
    #: tolerances and are cached under precision-qualified keys).  The parity
    #: probe runs against the cast model, so coalescing stays bit-exact
    #: within the chosen tier.
    precision: str = "float64"
    #: Observability knobs (trace sampling, span-ring size); metrics and
    #: latency histograms are always on.  Tracing is strictly out of band:
    #: response bytes and cache keys are identical at any sample rate.
    obs: ObsConfig = field(default_factory=ObsConfig)

    def make_batch_policy(self, telemetry: Optional[Telemetry] = None) -> BatchPolicy:
        """The configured :class:`BatchPolicy` instance."""
        if self.batch_policy == "static":
            return StaticBatchPolicy(self.max_batch_size, self.max_wait_ms)
        if self.batch_policy == "adaptive":
            return AdaptiveBatchPolicy(
                initial_batch_size=self.max_batch_size,
                min_batch_size=self.min_batch_size,
                max_batch_size=self.max_adaptive_batch_size,
                initial_wait_ms=self.max_wait_ms,
                min_wait_ms=self.min_wait_ms,
                max_wait_ms=self.max_adaptive_wait_ms,
                latency_budget_ms=self.policy_latency_budget_ms,
                hysteresis=self.policy_hysteresis,
                telemetry=telemetry,
            )
        raise ValueError(
            f"unknown batch_policy {self.batch_policy!r} (choose 'static' or 'adaptive')"
        )


@dataclass
class ClassifyResponse:
    """Logits (and derived prediction/probabilities) for one instance."""

    model: str
    logits: np.ndarray
    cached: bool = False

    @property
    def predicted(self) -> int:
        return int(self.logits.argmax())

    @property
    def probabilities(self) -> np.ndarray:
        shifted = self.logits - self.logits.max()
        exps = np.exp(shifted)
        return exps / exps.sum()


@dataclass
class ExplainResponse:
    """One explanation heatmap plus its request echo."""

    model: str
    family: str
    class_id: int
    heatmap: np.ndarray
    success_ratio: Optional[float] = None
    k: Optional[int] = None
    seed: Optional[int] = None
    cached: bool = False


@dataclass
class _ClassifyWork:
    instance: np.ndarray
    cache_key: str


@dataclass
class _ExplainWork:
    instance: np.ndarray
    class_id: int
    k: int
    seed: int
    cache_key: str


class ExplanationService:
    """Online classify/explain over a :class:`ModelArtifactStore`."""

    def __init__(
        self,
        store: ModelArtifactStore,
        *,
        cache: Optional[ExplanationCache] = None,
        telemetry: Optional[Telemetry] = None,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.store = store
        self.config = config or ServeConfig()
        if self.config.precision not in ("float64", "float32"):
            raise ValueError(f"unknown precision {self.config.precision!r}; "
                             "expected 'float64' or 'float32'")
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = Tracer(
            sample_rate=self.config.obs.trace_sample_rate,
            ring_size=self.config.obs.trace_ring_size,
            process=self.config.obs.process_label,
        )
        self.cache = cache if cache is not None else ExplanationCache(telemetry=self.telemetry)
        if self.cache.telemetry is not self.telemetry:
            # One registry for the whole service, whatever the caller built.
            self.cache.telemetry = self.telemetry
        remote = getattr(self.cache, "remote", None)
        if remote is not None and getattr(remote, "telemetry", None) is not self.telemetry:
            # Remote-tier traffic (hits/misses/errors/latency) belongs in the
            # same /metrics snapshot as the rest of the service.
            remote.telemetry = self.telemetry
        self._parity: Dict[str, engine.ParityReport] = {}
        self.batcher = MicroBatcher(
            self._execute_group,
            policy=self.config.make_batch_policy(telemetry=self.telemetry),
            max_queue_depth=self.config.max_queue_depth,
            max_total_depth=self.config.max_total_depth,
            shed_watermark=self.config.shed_watermark,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def models(self) -> List[Dict[str, Any]]:
        """Artifact records of every registered model."""
        return [self.store.artifact(name).to_json() for name in self.store.list_names()]

    def healthz(self) -> Dict[str, Any]:
        return {"status": "ok", "models": len(self.store.list_names())}

    def metrics(self) -> Dict[str, Any]:
        """The flat snapshot plus per-histogram percentile summaries."""
        payload: Dict[str, Any] = self.telemetry.snapshot()
        payload["histograms"] = self.telemetry.histogram_summaries()
        return payload

    def close(self, timeout: Any = _UNSET) -> None:
        """Drain the batcher and stop its workers.

        ``timeout`` defaults to the config's ``drain_timeout_s``; queued
        requests still unserved when it expires fail fast instead of
        hanging their callers.  Pass ``None`` to wait indefinitely.
        """
        if timeout is _UNSET:
            timeout = self.config.drain_timeout_s
        self.batcher.close(timeout=timeout)

    def __enter__(self) -> "ExplanationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def _model(self, name: str):
        """The live model for ``name``, cast to the serving precision.

        The store's warm-cached instance is cast in place exactly once (the
        cast is idempotent); do not share one store between services running
        at different precisions.
        """
        model = self.store.load(name)
        if self.config.precision == "float32" and model.compute_dtype != np.float32:
            model.astype(np.float32)
        return model

    def _serving_hash(self, artifact: ModelArtifact) -> str:
        """The artifact's state hash, qualified by the serving precision.

        float32 responses are legitimately different bytes from the float64
        reference, so they must never collide in the response or
        per-permutation caches.
        """
        if self.config.precision == "float32" and artifact.state_hash:
            return f"{artifact.state_hash}:float32"
        return artifact.state_hash

    def _check_instance(self, artifact: ModelArtifact, instance) -> np.ndarray:
        series = np.asarray(instance, dtype=np.float64)
        if series.shape != (artifact.n_dimensions, artifact.length):
            raise ValueError(
                f"instance must have shape ({artifact.n_dimensions}, "
                f"{artifact.length}) for model {artifact.name!r}, got {series.shape}"
            )
        return series

    def classify(self, model_name: str, instance) -> ClassifyResponse:
        """Class logits for one ``(D, n)`` instance of ``model_name``."""
        self.telemetry.increment("requests_classify")
        artifact = self.store.artifact(model_name)
        series = self._check_instance(artifact, instance)
        key = response_cache_key(self._serving_hash(artifact), "classify", series, None, None, None)
        blob = self.cache.get(key)
        if blob is not None:
            return ClassifyResponse(model=model_name, logits=pickle.loads(blob), cached=True)
        work = _ClassifyWork(instance=series, cache_key=key)
        # Priority 1: under a global depth bound, classifies keep being
        # admitted after explains have started shedding.
        future = self.batcher.submit(group_key_of(model_name, "classify"), work, priority=1)
        return ClassifyResponse(model=model_name, logits=future.result())

    def explain(
        self,
        model_name: str,
        instance,
        class_id: Optional[int] = None,
        k: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> ExplainResponse:
        """Explanation heatmap for one ``(D, n)`` instance of ``model_name``.

        ``class_id`` defaults to the model's prediction (via
        :meth:`classify`, so the lookup itself batches and caches).  ``k`` and
        ``seed`` parameterise the dCAM permutation draw and are ignored by
        the other families; two requests differing only in ignored knobs
        share one cache entry.
        """
        self.telemetry.increment("requests_explain")
        artifact = self.store.artifact(model_name)
        family = artifact.explainer_family
        if family is None:
            raise KeyError(
                f"model {model_name!r} ({artifact.model_name}) declares no "
                "explainer family and cannot be explained"
            )
        series = self._check_instance(artifact, instance)
        if class_id is None:
            class_id = self.classify(model_name, series).predicted
        class_id = int(class_id)
        if not 0 <= class_id < artifact.n_classes:
            raise ValueError(
                f"class_id {class_id} out of range for {artifact.n_classes} classes"
            )
        uses_permutations = family == "dcam"
        k = int(k) if k is not None else self.config.default_k
        if uses_permutations and not 1 <= k <= self.config.max_k:
            raise ValueError(
                f"k must be between 1 and {self.config.max_k}, got {k}"
            )
        seed = int(seed) if seed is not None else self.config.default_seed
        key = response_cache_key(
            self._serving_hash(artifact),
            "explain",
            series,
            class_id,
            k if uses_permutations else None,
            seed if uses_permutations else None,
        )
        blob = self.cache.get(key)
        if blob is not None:
            heatmap, success_ratio = pickle.loads(blob)
            return ExplainResponse(
                model=model_name,
                family=family,
                class_id=class_id,
                heatmap=heatmap,
                success_ratio=success_ratio,
                k=k if uses_permutations else None,
                seed=seed if uses_permutations else None,
                cached=True,
            )
        work = _ExplainWork(instance=series, class_id=class_id, k=k, seed=seed, cache_key=key)
        # dCAM explains cost ~k permutation forwards each; reporting k as the
        # request cost lets a cost-aware policy size flushes by work, not count.
        future = self.batcher.submit(
            group_key_of(model_name, "explain"),
            work,
            cost=float(k) if uses_permutations else 1.0,
        )
        output: engine.ExplainOutput = future.result()
        return ExplainResponse(
            model=model_name,
            family=family,
            class_id=class_id,
            heatmap=output.heatmap,
            success_ratio=output.success_ratio,
            k=k if uses_permutations else None,
            seed=seed if uses_permutations else None,
        )

    # ------------------------------------------------------------------
    # Flush execution (worker thread)
    # ------------------------------------------------------------------
    def parity(self, model_name: str) -> engine.ParityReport:
        """The artifact's batch-parity report, verified on *this* host.

        Parity is a property of the architecture × BLAS build, so the report
        recorded at registration is advisory only: unless
        ``config.reprobe_parity`` is off, the probe re-runs locally once per
        artifact (at its first flush) and wins over the recorded value — a
        store exported on a machine whose kernels batch exactly must not
        make a different serving host coalesce unverified.
        """
        report = self._parity.get(model_name)
        if report is not None:
            return report
        artifact = self.store.artifact(model_name)
        recorded = artifact.metadata.get("batch_parity")
        if self.config.reprobe_parity or recorded is None:
            report = engine.probe_batch_parity(self._model(model_name))
            if recorded is not None and report.to_json() != recorded:
                self.telemetry.increment("parity_probe_mismatches")
        else:
            report = engine.ParityReport(
                classify=bool(recorded.get("classify")),
                explain=recorded.get("explain"),
            )
        self._parity[model_name] = report
        return report

    def _execute_group(self, group_key, requests: List[Any]) -> List[Any]:
        model_name, kind = group_key
        model = self._model(model_name)
        parity = self.parity(model_name)
        with self.telemetry.timer("engine"):
            with span("engine", model=model_name, kind=kind, width=len(requests)):
                if kind == "classify":
                    return self._execute_classify(model_name, model, requests, parity.classify)
                return self._execute_explain(model_name, model, requests, bool(parity.explain))

    def _execute_classify(
        self, model_name: str, model, requests: List[_ClassifyWork], coalesce: bool
    ) -> List[np.ndarray]:
        if coalesce or len(requests) == 1:
            X = np.stack([work.instance for work in requests])
            outputs = engine.classify_outputs(model, X)
        else:
            self.telemetry.increment("coalesce_fallbacks")
            outputs = [engine.classify_outputs(model, work.instance[None])[0] for work in requests]
        results = []
        for work, output in zip(requests, outputs):
            self.cache.put(
                work.cache_key, pickle.dumps(output.logits, protocol=pickle.HIGHEST_PROTOCOL)
            )
            results.append(output.logits)
        return results

    def _execute_explain(
        self, model_name: str, model, requests: List[_ExplainWork], coalesce: bool
    ) -> List[engine.ExplainOutput]:
        artifact = self.store.artifact(model_name)
        family = artifact.explainer_family
        if coalesce or len(requests) == 1:
            X = np.stack([work.instance for work in requests])
            outputs = engine.explain_outputs(
                model,
                family,
                X,
                [work.class_id for work in requests],
                [work.k for work in requests],
                [work.seed for work in requests],
                batch_size=self.config.engine_batch_size,
                cache=self.cache,
                model_hash=self._serving_hash(artifact) or None,
            )
        else:
            self.telemetry.increment("coalesce_fallbacks")
            outputs = [
                engine.per_request_explain(
                    model,
                    family,
                    work.instance,
                    work.class_id,
                    work.k,
                    work.seed,
                    batch_size=self.config.engine_batch_size,
                    cache=self.cache,
                    model_hash=self._serving_hash(artifact) or None,
                )
                for work in requests
            ]
        for work, output in zip(requests, outputs):
            self.cache.put(
                work.cache_key,
                pickle.dumps(
                    (output.heatmap, output.success_ratio), protocol=pickle.HIGHEST_PROTOCOL
                ),
            )
        return outputs
