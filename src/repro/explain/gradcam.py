"""grad-CAM explainer: MTEX-CNN's two-block explanation ("MTEX-grad").

The per-instance path reuses :func:`repro.core.gradcam.mtex_explanation`
verbatim.  The batch engine forwards a whole micro-batch through the shared
:func:`repro.core.gradcam.mtex_forward` sequence once, selects every
instance's class logit with one fancy-indexed gather, and back-propagates the
*sum* of the selected logits in a single ``backward()`` — instances do not
interact in eval mode (batch normalisation uses running statistics), so each
instance's feature gradients equal its single-instance gradients.  The
weight/combine and normalisation steps are the same
:func:`~repro.core.gradcam.gradcam_batch_from` /
:func:`~repro.core.gradcam.combine_mtex_maps` helpers the per-instance path
uses, so both paths agree to float round-off (≤ 1e-10) by construction.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.gradcam import (
    combine_mtex_maps,
    gradcam_batch_from,
    mtex_explanation,
    mtex_forward,
)
from .base import Explainer, Explanation
from .registry import register_explainer


@register_explainer("gradcam")
class GradCAMExplainer(Explainer):
    """MTEX-grad: block-1 dimension map modulated by the block-2 temporal map."""

    def __init__(self, model, **kwargs) -> None:
        super().__init__(model, **kwargs)
        for attribute in ("block1_features", "merge", "block2", "hidden", "output"):
            if not hasattr(model, attribute):
                raise TypeError(
                    f"{type(model).__name__} lacks {attribute!r}; the gradcam "
                    "family explains the two-block MTEX-CNN architecture"
                )

    def explain(self, series: np.ndarray, class_id: int) -> Explanation:
        series = self._check_series(series)
        heatmap = mtex_explanation(self.model, series, int(class_id))
        return Explanation(heatmap=heatmap, class_id=int(class_id))

    def explain_batch(self, X: np.ndarray,
                      class_ids: Sequence[int]) -> List[Explanation]:
        X, class_ids = self._check_batch(X, class_ids)
        model = self.model
        model.eval()
        explanations: List[Explanation] = []
        for start in range(0, len(X), self.batch_size):
            stop = min(start + self.batch_size, len(X))
            batch_ids = np.asarray(class_ids[start:stop])
            block1, block2, logits = mtex_forward(model,
                                                  model.prepare_input(X[start:stop]))
            # Sum of each instance's own class logit: instances are
            # independent, so the gradients equal the per-instance ones.
            score = logits[np.arange(len(batch_ids)), batch_ids].sum()
            score.backward()
            dimension_maps = gradcam_batch_from(block1, relu=True)  # (B, D, n)
            temporal_maps = gradcam_batch_from(block2, relu=True)   # (B, n)
            for offset, class_id in enumerate(class_ids[start:stop]):
                explanations.append(Explanation(
                    heatmap=combine_mtex_maps(dimension_maps[offset],
                                              temporal_maps[offset]),
                    class_id=class_id,
                ))
        return explanations
