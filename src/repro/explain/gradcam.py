"""grad-CAM explainer: MTEX-CNN's two-block explanation ("MTEX-grad").

Both entry points run the graph-free explicit-VJP engine
(:func:`repro.core.gradcam.mtex_vjp_maps`): the forward passes execute under
``inference_mode`` (fused eval kernels, no autograd tape) and the class-score
gradient is propagated by hand through the GAP + dense head, block 2 and the
merge convolution — :meth:`GradCAMExplainer.explain` is simply the batch
engine at width 1, so the two paths are bit-identical by construction.
Instances do not interact in eval mode (batch normalisation uses running
statistics), so each instance's maps equal its single-instance maps.  The
recorded-graph path (:func:`repro.core.gradcam.mtex_explanation`) is retained
as the reference; the VJP engine agrees with it to float round-off (≤ 1e-10,
pinned by tests).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.gradcam import combine_mtex_maps, mtex_vjp_maps
from .base import Explainer, Explanation
from .registry import register_explainer


@register_explainer("gradcam")
class GradCAMExplainer(Explainer):
    """MTEX-grad: block-1 dimension map modulated by the block-2 temporal map."""

    def __init__(self, model, **kwargs) -> None:
        super().__init__(model, **kwargs)
        for attribute in ("block1_features", "merge", "block2", "hidden", "output"):
            if not hasattr(model, attribute):
                raise TypeError(
                    f"{type(model).__name__} lacks {attribute!r}; the gradcam "
                    "family explains the two-block MTEX-CNN architecture"
                )

    def explain(self, series: np.ndarray, class_id: int) -> Explanation:
        series = self._check_series(series)
        return self.explain_batch(series[None], [int(class_id)])[0]

    def explain_batch(self, X: np.ndarray,
                      class_ids: Sequence[int]) -> List[Explanation]:
        X, class_ids = self._check_batch(X, class_ids)
        explanations: List[Explanation] = []
        for start in range(0, len(X), self.batch_size):
            stop = min(start + self.batch_size, len(X))
            dimension_maps, temporal_maps = mtex_vjp_maps(
                self.model, X[start:stop], class_ids[start:stop])
            for offset, class_id in enumerate(class_ids[start:stop]):
                explanations.append(Explanation(
                    heatmap=combine_mtex_maps(dimension_maps[offset],
                                              temporal_maps[offset]),
                    class_id=class_id,
                ))
        return explanations
