"""dCAM explainer: the d-architectures operating on the ``C(T)`` cube.

A thin family adapter over the shared micro-batched pipeline of
:mod:`repro.core.dcam`: :meth:`DCAMExplainer.explain` wraps
:func:`~repro.core.dcam.compute_dcam` and :meth:`DCAMExplainer.explain_batch`
routes multi-instance work through
:func:`~repro.core.dcam.compute_dcam_batch`, whose micro-batches cross
instance boundaries so forward passes are never padded down to one instance's
leftover permutations.  For a given generator state both produce identical
results (the batch pipeline draws each instance's permutations in sequence).

When an :class:`~repro.explain.base.Explainer` ``cache`` is attached, the
family caches at *permutation* granularity: each permutation's CAM rows and
predicted class are stored under a content key folding in the model-state
hash, the instance bytes, the class and the permutation itself.  Because a
seeded generator draws the first ``k₁`` permutations of a ``k₂ > k₁`` draw
identically, re-explaining an instance at growing ``k`` (Figure 10's sweep)
only forwards the permutations never seen before — the paper's per-``k``
curves then cost ``max(k)`` forwards instead of ``sum(k)``.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.dcam import (
    _BATCH_MATERIALIZE_BYTES,
    DCAMResult,
    _assemble_result,
    _permutation_cams_batched,
    _stack_orders,
    compute_dcam,
    compute_dcam_batch,
)
from ..core.input_transform import random_permutations
from ..nn.serialization import state_hash
from .base import Explainer, Explanation
from .registry import register_explainer

#: Soft cap on the retained ``M̄`` tensors when ``keep_details`` is off:
#: instances are pushed through :func:`compute_dcam_batch` in groups no larger
#: than this, and each group's ``(D, D, n)`` payloads are dropped as soon as
#: the group's heatmaps are extracted.
_DETAILS_SCRATCH_BYTES = 256 * 1024 * 1024


def _instance_key_base(model_hash: str, series: np.ndarray,
                       class_id: int) -> "hashlib._Hash":
    """Digest over everything but the permutation (copied per order below)."""
    digest = hashlib.sha256()
    digest.update(b"dcam-permutation-cam\x00")
    digest.update(model_hash.encode("ascii"))
    digest.update(b"\x00")
    series = np.ascontiguousarray(series, dtype=np.float64)
    digest.update(str(series.shape).encode("ascii"))
    digest.update(series.tobytes())
    digest.update(f"\x00{int(class_id)}\x00".encode("ascii"))
    return digest


def permutation_cache_key(model_hash: str, series: np.ndarray, class_id: int,
                          order: np.ndarray) -> str:
    """Content key of one permutation's CAM rows for one (instance, class).

    Folds in the model-state hash, the instance bytes and the permutation, so
    an entry can only ever replay the exact forward pass that produced it.
    """
    digest = _instance_key_base(model_hash, series, class_id)
    digest.update(np.ascontiguousarray(order, dtype=np.int64).tobytes())
    return digest.hexdigest()


@register_explainer("dcam")
class DCAMExplainer(Explainer):
    """dCAM with the ``n_g / k`` success ratio as the quality proxy.

    ``use_only_correct`` selects the permutation filter ablated in the paper:
    average ``M̄`` over all ``k`` permutations (default, the paper's choice)
    or only over the correctly-classified ones.
    """

    def __init__(self, model, *, use_only_correct: bool = False,
                 model_hash: Optional[str] = None, **kwargs) -> None:
        super().__init__(model, **kwargs)
        if getattr(model, "input_kind", None) != "cube":
            raise TypeError(
                f"dCAM requires a d-architecture (input_kind == 'cube'); "
                f"got {type(model).__name__}"
            )
        self.use_only_correct = bool(use_only_correct)
        # ``model_hash`` lets callers that already know the state hash (the
        # serving layer's artifact store records it at registration) skip the
        # full-model rehash on every explainer construction.
        self._model_hash: Optional[str] = model_hash

    def model_state_hash(self) -> str:
        """SHA-256 of the model state (computed once; cache keys fold it in)."""
        if self._model_hash is None:
            self._model_hash = state_hash(self.model)
        return self._model_hash

    def _wrap(self, result: DCAMResult) -> Explanation:
        return Explanation(heatmap=result.dcam, class_id=result.class_id,
                           success_ratio=result.success_ratio,
                           details=result if self.keep_details else None)

    # ------------------------------------------------------------------
    # Cache-aware permutation evaluation
    # ------------------------------------------------------------------
    def _cached_results(self, X: np.ndarray, class_ids: Sequence[int],
                        per_instance_orders: List[np.ndarray]) -> List[DCAMResult]:
        """Per-instance results with permutation CAMs served from the cache.

        Only the permutations without a cache entry go through the shared
        micro-batched forward pipeline (still crossing instance boundaries);
        their CAM rows and predicted classes are stored for future calls.
        """
        n_instances = len(X)
        keys: List[List[str]] = []
        cams: List[np.ndarray] = []
        predicted: List[np.ndarray] = []
        missing: List[Tuple[int, int]] = []  # (instance index, permutation index)
        model_hash = self.model_state_hash()
        for index in range(n_instances):
            orders = per_instance_orders[index]
            # The instance bytes dominate the key material; hash them once
            # and fold each (tiny) permutation into a copy of the digest.
            base = _instance_key_base(model_hash, X[index], class_ids[index])
            instance_keys = []
            for order in orders:
                digest = base.copy()
                digest.update(np.ascontiguousarray(order, dtype=np.int64).tobytes())
                instance_keys.append(digest.hexdigest())
            keys.append(instance_keys)
            count, (n_dimensions, length) = len(orders), X[index].shape
            cams.append(np.empty((count, n_dimensions, length)))
            predicted.append(np.empty(count, dtype=np.int64))
            for position, key in enumerate(instance_keys):
                blob = self.cache.get(key)
                if blob is None:
                    missing.append((index, position))
                else:
                    cam_rows, predicted_class = pickle.loads(blob)
                    cams[index][position] = cam_rows
                    predicted[index][position] = predicted_class

        if missing:
            # Honour compute_dcam_batch's materialisation cap: permuted series
            # + CAM rows cost ~2 * D * n * 8 bytes per missing permutation.
            # Chunk boundaries are kept at multiples of the micro-batch width,
            # so the forward-pass partition (and therefore every bit of the
            # result) is identical to one unchunked call.
            _, n_dimensions, length = X.shape
            bytes_per_permutation = 2 * n_dimensions * length * 8
            chunk = max(1, _BATCH_MATERIALIZE_BYTES // max(1, bytes_per_permutation))
            chunk = max(self.batch_size, chunk - chunk % self.batch_size)
            for chunk_start in range(0, len(missing), chunk):
                chunk_missing = missing[chunk_start : chunk_start + chunk]
                instance_index = np.array([index for index, _ in chunk_missing])
                orders_flat = np.stack(
                    [per_instance_orders[index][position]
                     for index, position in chunk_missing]
                )
                permuted_flat = X[instance_index[:, None], orders_flat]
                weights_flat = self.model.class_weights[
                    np.array([class_ids[index] for index, _ in chunk_missing])
                ]
                cams_flat, predicted_flat = _permutation_cams_batched(
                    self.model, permuted_flat, weights_flat, self.batch_size
                )
                for flat, (index, position) in enumerate(chunk_missing):
                    cams[index][position] = cams_flat[flat]
                    predicted[index][position] = predicted_flat[flat]
                    self.cache.put(
                        keys[index][position],
                        pickle.dumps((cams_flat[flat], int(predicted_flat[flat])),
                                     protocol=pickle.HIGHEST_PROTOCOL),
                    )

        return [
            _assemble_result(cams[index], per_instance_orders[index], predicted[index],
                             class_ids[index], self.use_only_correct)
            for index in range(n_instances)
        ]

    def _draw_orders(self, n_instances: int, n_dimensions: int,
                     permutations) -> List[np.ndarray]:
        """One validated ``(k_i, D)`` order stack per instance.

        Random draws come off ``self.rng`` instance by instance, exactly as
        :func:`compute_dcam_batch` (and the legacy per-instance loop) would.
        """
        if permutations is not None:
            if len(permutations) != n_instances:
                raise ValueError(
                    f"permutations must supply one sequence per instance "
                    f"({n_instances}), got {len(permutations)}"
                )
            return [_stack_orders(orders, n_dimensions) for orders in permutations]
        rng = self.rng or np.random.default_rng()
        return [
            _stack_orders(random_permutations(n_dimensions, self.k, rng), n_dimensions)
            for _ in range(n_instances)
        ]

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def explain(self, series: np.ndarray, class_id: int,
                permutations: Optional[Sequence[np.ndarray]] = None) -> Explanation:
        series = self._check_series(series)
        if self.cache is not None:
            orders = self._draw_orders(1, series.shape[0],
                                       None if permutations is None else [permutations])
            result = self._cached_results(series[None], [int(class_id)], orders)[0]
            return self._wrap(result)
        result = compute_dcam(self.model, series, int(class_id), k=self.k,
                              rng=self.rng, permutations=permutations,
                              use_only_correct=self.use_only_correct,
                              batch_size=self.batch_size)
        return self._wrap(result)

    def explain_batch(self, X: np.ndarray, class_ids: Sequence[int],
                      permutations: Optional[Sequence[Sequence[np.ndarray]]] = None,
                      ) -> List[Explanation]:
        X, class_ids = self._check_batch(X, class_ids)
        n_instances, n_dimensions, length = X.shape
        if self.keep_details:
            group = max(1, n_instances)
        else:
            # The returned DCAMResults each hold a (D, D, n) M̄; when the
            # caller does not want them, bound the peak by grouping the
            # pipeline calls and dropping each group's payloads immediately.
            # Permutations are drawn per instance in sequence either way, so
            # grouping never changes the results.
            bytes_per_result = n_dimensions * n_dimensions * length * 8
            group = max(1, _DETAILS_SCRATCH_BYTES // max(1, bytes_per_result))
        explanations: List[Explanation] = []
        if self.cache is not None:
            per_instance_orders = self._draw_orders(n_instances, n_dimensions,
                                                    permutations)
            # The cached path materialises each group instance's (k, D, n)
            # CAM stack up front; apply the same per-instance accounting as
            # compute_dcam_batch so the group honours the memory cap.
            max_count = max((len(orders) for orders in per_instance_orders),
                            default=1)
            bytes_per_instance = 2 * max_count * n_dimensions * length * 8
            group = min(group, max(1, _BATCH_MATERIALIZE_BYTES
                                   // max(1, bytes_per_instance)))
            for start in range(0, n_instances, group):
                stop = min(start + group, n_instances)
                results = self._cached_results(X[start:stop], class_ids[start:stop],
                                               per_instance_orders[start:stop])
                explanations.extend(self._wrap(result) for result in results)
            return explanations
        for start in range(0, n_instances, group):
            stop = min(start + group, n_instances)
            results = compute_dcam_batch(
                self.model, X[start:stop], class_ids[start:stop], k=self.k,
                rng=self.rng,
                permutations=None if permutations is None else permutations[start:stop],
                use_only_correct=self.use_only_correct,
                batch_size=self.batch_size)
            explanations.extend(self._wrap(result) for result in results)
        return explanations
