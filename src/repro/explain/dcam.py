"""dCAM explainer: the d-architectures operating on the ``C(T)`` cube.

A thin family adapter over the shared micro-batched pipeline of
:mod:`repro.core.dcam`: :meth:`DCAMExplainer.explain` wraps
:func:`~repro.core.dcam.compute_dcam` and :meth:`DCAMExplainer.explain_batch`
routes multi-instance work through
:func:`~repro.core.dcam.compute_dcam_batch`, whose micro-batches cross
instance boundaries so forward passes are never padded down to one instance's
leftover permutations.  For a given generator state both produce identical
results (the batch pipeline draws each instance's permutations in sequence).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.dcam import DCAMResult, compute_dcam, compute_dcam_batch
from .base import Explainer, Explanation
from .registry import register_explainer

#: Soft cap on the retained ``M̄`` tensors when ``keep_details`` is off:
#: instances are pushed through :func:`compute_dcam_batch` in groups no larger
#: than this, and each group's ``(D, D, n)`` payloads are dropped as soon as
#: the group's heatmaps are extracted.
_DETAILS_SCRATCH_BYTES = 256 * 1024 * 1024


@register_explainer("dcam")
class DCAMExplainer(Explainer):
    """dCAM with the ``n_g / k`` success ratio as the quality proxy.

    ``use_only_correct`` selects the permutation filter ablated in the paper:
    average ``M̄`` over all ``k`` permutations (default, the paper's choice)
    or only over the correctly-classified ones.
    """

    def __init__(self, model, *, use_only_correct: bool = False, **kwargs) -> None:
        super().__init__(model, **kwargs)
        if getattr(model, "input_kind", None) != "cube":
            raise TypeError(
                f"dCAM requires a d-architecture (input_kind == 'cube'); "
                f"got {type(model).__name__}"
            )
        self.use_only_correct = bool(use_only_correct)

    def _wrap(self, result: DCAMResult) -> Explanation:
        return Explanation(heatmap=result.dcam, class_id=result.class_id,
                           success_ratio=result.success_ratio,
                           details=result if self.keep_details else None)

    def explain(self, series: np.ndarray, class_id: int,
                permutations: Optional[Sequence[np.ndarray]] = None) -> Explanation:
        series = self._check_series(series)
        result = compute_dcam(self.model, series, int(class_id), k=self.k,
                              rng=self.rng, permutations=permutations,
                              use_only_correct=self.use_only_correct,
                              batch_size=self.batch_size)
        return self._wrap(result)

    def explain_batch(self, X: np.ndarray,
                      class_ids: Sequence[int]) -> List[Explanation]:
        X, class_ids = self._check_batch(X, class_ids)
        n_instances, n_dimensions, length = X.shape
        if self.keep_details:
            group = n_instances
        else:
            # The returned DCAMResults each hold a (D, D, n) M̄; when the
            # caller does not want them, bound the peak by grouping the
            # pipeline calls and dropping each group's payloads immediately.
            # Permutations are drawn per instance in sequence either way, so
            # grouping never changes the results.
            bytes_per_result = n_dimensions * n_dimensions * length * 8
            group = max(1, _DETAILS_SCRATCH_BYTES // max(1, bytes_per_result))
        explanations: List[Explanation] = []
        for start in range(0, n_instances, group):
            stop = min(start + group, n_instances)
            results = compute_dcam_batch(self.model, X[start:stop],
                                         class_ids[start:stop], k=self.k,
                                         rng=self.rng,
                                         use_only_correct=self.use_only_correct,
                                         batch_size=self.batch_size)
            explanations.extend(self._wrap(result) for result in results)
        return explanations
