"""Explainer registry: look up an explanation method by model *family*.

Mirrors :mod:`repro.models.registry`, but keys on the ``explainer_family``
class attribute that every explainable :class:`~repro.models.base.BaseClassifier`
subclass declares (``"cam"``, ``"gradcam"`` or ``"dcam"``) instead of on
fragile model-name prefixes.  Adding a new explanation method is a one-file
change: subclass :class:`~repro.explain.base.Explainer`, decorate it with
:func:`register_explainer`, and set ``explainer_family`` on the architectures
it serves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

import numpy as np

from ..core.dcam import DEFAULT_BATCH_SIZE
from .base import DEFAULT_K, Explainer

#: family name -> concrete :class:`Explainer` subclass.
EXPLAINER_REGISTRY: Dict[str, Type[Explainer]] = {}


def register_explainer(family: str) -> Callable[[Type[Explainer]], Type[Explainer]]:
    """Class decorator registering an :class:`Explainer` under ``family``."""

    def decorator(cls: Type[Explainer]) -> Type[Explainer]:
        if family in EXPLAINER_REGISTRY:
            raise ValueError(f"explainer family {family!r} is already registered")
        cls.family = family
        EXPLAINER_REGISTRY[family] = cls
        return cls

    return decorator


def registered_families() -> List[str]:
    """Families accepted by :func:`get_explainer` (sorted)."""
    return sorted(EXPLAINER_REGISTRY)


def explainer_family_of(model) -> str:
    """The ``explainer_family`` declared by ``model``'s class.

    Raises
    ------
    KeyError
        If the model declares no family (e.g. the recurrent baselines, whose
        hidden states expose no activation maps to explain).
    """
    family = getattr(model, "explainer_family", None)
    if family is None:
        raise KeyError(
            f"{type(model).__name__} declares no explainer_family and cannot be "
            f"explained; registered families: {registered_families()}"
        )
    return family


def get_explainer(model, *, k: int = DEFAULT_K,
                  batch_size: int = DEFAULT_BATCH_SIZE,
                  rng: Optional[np.random.Generator] = None,
                  **kwargs) -> Explainer:
    """Build the explainer matching ``model``'s declared family.

    Extra keyword arguments are forwarded to the concrete explainer (e.g.
    ``use_only_correct`` for the dCAM family).

    Raises
    ------
    KeyError
        If the model declares no ``explainer_family`` or declares one that no
        registered explainer serves; the message lists the registered
        families.
    """
    family = explainer_family_of(model)
    if family not in EXPLAINER_REGISTRY:
        raise KeyError(
            f"no explainer registered for family {family!r} (declared by "
            f"{type(model).__name__}); registered families: {registered_families()}"
        )
    return EXPLAINER_REGISTRY[family](model, k=k, batch_size=batch_size, rng=rng,
                                      **kwargs)
