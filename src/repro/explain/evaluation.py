"""The shared Dr-acc evaluation engine for every explanation family.

Collapses the near-identical explainable-instance selection and Dr-acc
averaging loops that used to live in both ``eval/protocol.py`` and
``experiments/runner.py`` into one entry point:
:func:`evaluate_explainer(model, test, scale)` selects the instances, routes
them through the model family's registered explainer at batch width, and
returns an :class:`ExplanationReport` with per-instance and aggregate scores.

``scale`` is duck-typed (any object with ``n_explained_instances``,
``k_permutations`` and ``dcam_batch_size`` attributes works, e.g.
:class:`repro.experiments.config.ExperimentScale`) so this module does not
depend on the experiments layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.dcam import DEFAULT_BATCH_SIZE
from ..eval.dr_acc import dr_acc
from .base import DEFAULT_K
from .registry import get_explainer


@dataclass
class ExplanationReport:
    """Dr-acc of one trained model over the explainable test instances.

    Attributes
    ----------
    family:
        Explanation family that produced the heatmaps.
    target_class:
        Class whose instances were explained.
    instance_indices:
        Dataset indices of the explained instances, in evaluation order.
    scores:
        Per-instance Dr-acc (PR-AUC against the ground-truth masks).
    success_ratios:
        Per-instance ``n_g / k`` for the dCAM family (empty otherwise).
    """

    family: str
    target_class: int
    instance_indices: List[int] = field(default_factory=list)
    scores: List[float] = field(default_factory=list)
    success_ratios: List[float] = field(default_factory=list)

    @property
    def n_instances(self) -> int:
        return len(self.instance_indices)

    @property
    def dr_acc(self) -> float:
        """Mean Dr-acc over the explained instances."""
        return float(np.mean(self.scores)) if self.scores else float("nan")

    @property
    def success_ratio(self) -> Optional[float]:
        """Mean ``n_g / k`` (``None`` for families without the proxy)."""
        return float(np.mean(self.success_ratios)) if self.success_ratios else None

    def as_tuple(self):
        """The legacy ``(dr_acc, success_ratio)`` pair of the old helpers."""
        return self.dr_acc, self.success_ratio


def select_explainable_instances(dataset, target_class: int = 1,
                                 n_instances: Optional[int] = None) -> List[int]:
    """Indices of ``target_class`` instances with a non-empty ground-truth mask.

    The paper's protocol only scores instances of the class with injected
    discriminant features; ``n_instances`` caps the selection (first-come, as
    in the original per-driver loops this helper replaces).
    """
    if dataset.ground_truth is None:
        raise ValueError("dataset has no ground-truth masks")
    candidates = [
        index for index in range(len(dataset))
        if dataset.y[index] == target_class and dataset.ground_truth[index].sum() > 0
    ]
    if not candidates:
        raise ValueError(
            f"no instances of class {target_class} with non-empty ground truth"
        )
    return candidates if n_instances is None else candidates[:n_instances]


def evaluate_explainer(model, test, scale=None, *, target_class: int = 1,
                       n_instances: Optional[int] = None,
                       k: Optional[int] = None,
                       batch_size: Optional[int] = None,
                       rng: Optional[np.random.Generator] = None,
                       random_state: Optional[int] = None,
                       batched: bool = True,
                       cache=None) -> ExplanationReport:
    """Average Dr-acc of ``model`` over explainable instances of ``test``.

    Parameters
    ----------
    model:
        A trained classifier with a registered ``explainer_family``.
    test:
        Dataset with ground-truth masks (Dr-acc needs them).
    scale:
        Optional knob bundle supplying defaults for ``n_instances``
        (``scale.n_explained_instances``), ``k`` (``scale.k_permutations``)
        and ``batch_size`` (``scale.dcam_batch_size``); explicit keyword
        arguments win over it.
    rng, random_state:
        Permutation-draw generator for the dCAM family: ``rng`` is used
        as-is, otherwise one is seeded from ``random_state``.
    batched:
        If True (default) the instances go through the explainer's batch
        engine; otherwise they are explained one at a time.  Both paths agree
        to float round-off (≤ 1e-10).
    cache:
        Optional content-addressed byte store forwarded to the explainer (see
        :class:`repro.explain.base.Explainer`); the dCAM family reuses cached
        permutation CAMs across repeated evaluations of the same model and
        instances (e.g. Figure 10's per-``k`` sweep).
    """
    if n_instances is None and scale is not None:
        n_instances = scale.n_explained_instances
    if k is None:
        k = scale.k_permutations if scale is not None else DEFAULT_K
    if batch_size is None:
        batch_size = scale.dcam_batch_size if scale is not None else DEFAULT_BATCH_SIZE
    if rng is None:
        rng = np.random.default_rng(random_state)

    indices = select_explainable_instances(test, target_class, n_instances)
    class_ids = [int(test.y[index]) for index in indices]
    # Only heatmaps and success ratios are scored, so drop the per-instance
    # payloads (for dCAM the (D, D, n) M̄ tensors) instead of holding every
    # instance's at once.
    explainer = get_explainer(model, k=k, batch_size=batch_size, rng=rng,
                              keep_details=False, cache=cache)
    if batched:
        explanations = explainer.explain_batch(test.X[indices], class_ids)
    else:
        explanations = [explainer.explain(test.X[index], class_id)
                        for index, class_id in zip(indices, class_ids)]

    report = ExplanationReport(family=explainer.family, target_class=target_class,
                               instance_indices=list(indices))
    for index, explanation in zip(indices, explanations):
        report.scores.append(dr_acc(explanation.heatmap, test.ground_truth[index]))
        if explanation.success_ratio is not None:
            report.success_ratios.append(explanation.success_ratio)
    return report
