"""CAM explainer: the GAP + dense architectures (plain and c-variants).

The per-instance path reuses :func:`repro.core.cam.class_activation_map`
verbatim.  The batch engine runs whole micro-batches through one
``features()`` forward under :func:`repro.nn.inference_mode` and contracts the
filter axis of every instance against its class's dense-layer weight row in a
single ``einsum`` — the same strategy the dCAM pipeline uses for permuted
cubes, applied across instances.  Both paths agree to float round-off
(≤ 1e-10).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.cam import _check_model, cam_as_multivariate, class_activation_map
from ..nn import inference_mode
from .base import Explainer, Explanation
from .registry import register_explainer


@register_explainer("cam")
class CAMExplainer(Explainer):
    """CAM for any architecture ending with GAP + dense.

    Covers the plain 1D architectures (whose univariate CAM is broadcast to
    all dimensions, the paper's Section 5.1.2 convention) and the
    c-architectures (whose CAM is natively ``(D, n)``).
    """

    def __init__(self, model, **kwargs) -> None:
        super().__init__(model, **kwargs)
        _check_model(model)

    def _as_heatmap(self, cam: np.ndarray, n_dimensions: int) -> np.ndarray:
        if cam.ndim == 1:
            return cam_as_multivariate(cam, n_dimensions)
        return cam

    def explain(self, series: np.ndarray, class_id: int) -> Explanation:
        series = self._check_series(series)
        cam = class_activation_map(self.model, series, int(class_id))
        return Explanation(heatmap=self._as_heatmap(cam, series.shape[0]),
                           class_id=int(class_id))

    def explain_batch(self, X: np.ndarray,
                      class_ids: Sequence[int]) -> List[Explanation]:
        X, class_ids = self._check_batch(X, class_ids)
        n_instances, n_dimensions, _ = X.shape
        model = self.model
        model.eval()
        weights = model.class_weights[np.asarray(class_ids)]  # (N, F)
        explanations: List[Explanation] = []
        with inference_mode():
            for start in range(0, n_instances, self.batch_size):
                stop = min(start + self.batch_size, n_instances)
                features = model.features(model.prepare_input(X[start:stop]))
                # (B, F, n) for 1D architectures, (B, F, D, n) for c/d ones.
                cams = np.einsum("bf,bf...->b...", weights[start:stop],
                                 features.data)
                for offset, class_id in enumerate(class_ids[start:stop]):
                    explanations.append(Explanation(
                        heatmap=self._as_heatmap(cams[offset], n_dimensions),
                        class_id=class_id,
                    ))
        return explanations
