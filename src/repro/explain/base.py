"""The abstract explainer interface shared by all explanation families.

The paper evaluates three explanation methods under one Dr-acc protocol:
CAM for the GAP-headed architectures (plain and c-variants), grad-CAM for
MTEX-CNN, and dCAM for the d-architectures.  Each method is wrapped in an
:class:`Explainer` with two entry points:

* :meth:`Explainer.explain` — one ``(D, n)`` series, one class;
* :meth:`Explainer.explain_batch` — a stack of series explained together,
  letting the concrete explainer drive the model at full batch width (one
  ``features()`` forward per micro-batch instead of one per instance).

Both return :class:`Explanation` objects, so downstream evaluation code never
needs to know which family produced a heatmap.  Explainers are looked up by
the ``explainer_family`` attribute of the model class via
:mod:`repro.explain.registry` — no model-name string sniffing anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dcam import DEFAULT_BATCH_SIZE

#: Default number of dCAM permutations when no knob is supplied (the
#: evaluation protocols historically used 20; the paper uses 100).
DEFAULT_K = 20


@dataclass
class Explanation:
    """One explanation heatmap plus family-specific side information.

    Attributes
    ----------
    heatmap:
        The ``(D, n)`` attribution map scored by Dr-acc.
    class_id:
        The class the map explains.
    success_ratio:
        ``n_g / k`` for the dCAM family (the label-free quality proxy of
        Section 4.6); ``None`` for families without a permutation vote.
    details:
        Family-specific payload (e.g. the full :class:`~repro.core.dcam.DCAMResult`
        with ``M̄`` for dCAM); ``None`` when there is nothing beyond the map.
    """

    heatmap: np.ndarray
    class_id: int
    success_ratio: Optional[float] = None
    details: Optional[object] = None


class Explainer:
    """Base class of the explanation families served by the registry.

    Parameters
    ----------
    model:
        A trained classifier whose ``explainer_family`` matches this class's
        ``family``.
    k:
        Number of random permutations (only consumed by the dCAM family).
    batch_size:
        Micro-batch width of the batched engines: inputs per forward pass for
        CAM/grad-CAM, permuted cubes per forward pass for dCAM.  A speed /
        peak-memory trade-off that never changes results beyond float
        round-off.
    rng:
        Random generator (only consumed by the dCAM family's permutation
        draw).
    keep_details:
        Whether :class:`Explanation.details` carries the family-specific
        payload.  The dCAM payload (the ``(D, D, n)`` ``M̄`` tensor) dominates
        memory when many instances are explained at once, so bulk evaluation
        turns it off.
    cache:
        Optional content-addressed byte store (any object with
        ``get(key) -> Optional[bytes]`` and ``put(key, blob)``, e.g.
        :class:`repro.serve.cache.ExplanationCache`).  Families that support
        sub-explanation reuse consult it: the dCAM family caches *per
        permutation* — keyed on the model-state hash, the instance bytes, the
        class and the permutation — so re-explaining the same instance with a
        larger ``k`` (Figure 10's per-``k`` sweep) only forwards the
        permutations not seen before.  Families without reusable
        sub-computations ignore it; the serving layer caches their whole
        responses instead.
    """

    #: Registry key; set by the :func:`repro.explain.registry.register_explainer`
    #: decorator and mirrored by ``BaseClassifier.explainer_family``.
    family: ClassVar[str]

    def __init__(self, model, *, k: int = DEFAULT_K,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 rng: Optional[np.random.Generator] = None,
                 keep_details: bool = True,
                 cache: Optional[object] = None) -> None:
        self.model = model
        self.k = int(k)
        self.batch_size = max(1, int(batch_size))
        self.rng = rng
        self.keep_details = bool(keep_details)
        self.cache = cache

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def explain(self, series: np.ndarray, class_id: int) -> Explanation:
        """Explain one ``(D, n)`` series for ``class_id``."""
        raise NotImplementedError

    def explain_batch(self, X: np.ndarray,
                      class_ids: Sequence[int]) -> List[Explanation]:
        """Explain a stack ``(instances, D, n)`` of series at batch width."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared validation
    # ------------------------------------------------------------------
    @property
    def _input_dtype(self) -> np.dtype:
        """Dtype raw series are cast to — the model's compute dtype."""
        return getattr(self.model, "compute_dtype", np.dtype(np.float64))

    def _check_series(self, series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=self._input_dtype)
        if series.ndim != 2:
            raise ValueError(f"series must be (D, n), got shape {series.shape}")
        return series

    def _check_batch(self, X: np.ndarray,
                     class_ids: Sequence[int]) -> Tuple[np.ndarray, List[int]]:
        X = np.asarray(X, dtype=self._input_dtype)
        if X.ndim != 3:
            raise ValueError(f"X must be (instances, D, n), got shape {X.shape}")
        class_ids = [int(c) for c in class_ids]
        if len(X) != len(class_ids):
            raise ValueError("X and class_ids must have the same length")
        return X, class_ids
