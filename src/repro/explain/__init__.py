"""Unified explanation subsystem: one registry, three families, batch engines.

Every explanation method of the paper is an :class:`~repro.explain.base.Explainer`
registered under the ``explainer_family`` its model classes declare:

========  ===========================================  =======================
family    architectures                                method
========  ===========================================  =======================
cam       CNN / ResNet / InceptionTime and c-variants  CAM (Section 2.2)
gradcam   MTEX-CNN                                     grad-CAM ("MTEX-grad")
dcam      dCNN / dResNet / dInceptionTime              dCAM (Section 4)
========  ===========================================  =======================

Typical use::

    from repro.explain import get_explainer, evaluate_explainer

    explainer = get_explainer(model, k=100, batch_size=32)
    explanation = explainer.explain(series, class_id)          # one series
    explanations = explainer.explain_batch(X, class_ids)       # full batch

    report = evaluate_explainer(model, test_dataset, scale)    # Dr-acc protocol
    report.dr_acc, report.success_ratio
"""

from .base import DEFAULT_K, Explainer, Explanation
from .cam import CAMExplainer
from .dcam import DCAMExplainer
from .evaluation import (
    ExplanationReport,
    evaluate_explainer,
    select_explainable_instances,
)
from .gradcam import GradCAMExplainer
from .registry import (
    EXPLAINER_REGISTRY,
    explainer_family_of,
    get_explainer,
    register_explainer,
    registered_families,
)

__all__ = [
    "DEFAULT_K",
    "Explainer",
    "Explanation",
    "CAMExplainer",
    "GradCAMExplainer",
    "DCAMExplainer",
    "EXPLAINER_REGISTRY",
    "register_explainer",
    "registered_families",
    "explainer_family_of",
    "get_explainer",
    "ExplanationReport",
    "evaluate_explainer",
    "select_explainable_instances",
]
