"""Incremental conv-trunk evaluation for sliding windows.

A window slide by ``hop`` timesteps shifts the input's time axis: the new
window's column ``t`` equals the old window's column ``t + hop`` for every
``t < W - hop``, and only the trailing ``hop`` columns carry new data.
Stride-1 "same"-padded convolutions are translation-equivariant away from the
boundaries, so almost all of each layer's feature map can be *shifted* from
the previous window instead of recomputed.

Dirty-region algebra
--------------------
Dirty columns are tracked as ``[0, a) ∪ [b, W)`` — a left region poisoned by
the zero padding (the old window's padding sat ``hop`` columns further left)
and a right region fed by the new samples.  For a layer with time padding
``p`` (kernel ``2p + 1``), output column ``t`` is shift-copyable iff its
receptive field ``[t - p, t + p]`` avoids both regions **and** the sub-zero
padding indices (``t - p >= 0``); indices beyond ``W`` are zeros in both old
and new windows and are always safe.  Hence per layer::

    a' = min(W, a + p)          b' = max(0, b - p)

with ``a = 0, b = W - hop`` at the first layer.  Each hop therefore touches
``O(hop + depth * p)`` columns per layer instead of ``O(W)``.

Dirty columns are recomputed through the exact
:func:`~repro.nn.functional.fused_conv_bn_relu` kernel the full-width
inference path uses, fed a pre-assembled slab (interior slice plus explicit
boundary zeros) with ``padding=(0, 0)`` so interior slices are not spuriously
re-padded.  A full rebuild (:meth:`IncrementalTrunk.reset`) issues the same
full-width fused calls as :class:`repro.nn.Sequential`'s inference fast path,
so cold starts are bitwise-identical to the naive engine; shifted hops agree
to float round-off (≤ 1e-10 at float64 — einsum/BLAS accumulation is
layout-sensitive, so per-column bits may differ across call widths).

Only the CNN family qualifies: a trunk of ``Sequential(Conv, BatchNorm,
ReLU)`` blocks with time stride 1, odd kernels and "same" padding (1D
convolutions are lifted to height-1 2D).  Residual and inception trunks mix
branch topologies and pooling and fall outside the shift-equivariance
argument; :func:`supports_incremental` reports eligibility and the session
falls back to the naive engine per ``StreamConfig.on_unsupported``.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import List, Tuple

import numpy as np

from ..nn import BatchNorm, Conv1d, Conv2d, ReLU, Sequential
from ..nn.functional import fused_conv_bn_relu

__all__ = ["IncrementalTrunk", "UnsupportedArchitectureError", "supports_incremental"]


class UnsupportedArchitectureError(TypeError):
    """The model's trunk is not a stack of stride-1 Conv→BN→ReLU blocks."""


class _Block:
    """One Conv→BatchNorm→ReLU block plus its time-padding metadata."""

    __slots__ = ("conv", "bn", "pad", "lifted")

    def __init__(self, conv, bn, pad: int, lifted: bool) -> None:
        self.conv = conv
        self.bn = bn
        self.pad = pad
        self.lifted = lifted

    def proxy(self):
        """The conv handle :func:`fused_conv_bn_relu` consumes.

        2D convolutions pass through unchanged; 1D convolutions are lifted to
        height-1 2D via views built per call, so a later
        :meth:`~repro.models.base.BaseClassifier.astype` cast is picked up.
        """
        if not self.lifted:
            return self.conv
        conv = self.conv
        return SimpleNamespace(
            weight=SimpleNamespace(data=conv.weight.data[:, :, None, :]),
            bias=conv.bias,
            kernel_size=(1, conv.kernel_size),
            out_channels=conv.out_channels,
            stride=(1, 1),
            padding=(0, conv.padding),
        )


def _validate_block(module, index: int) -> _Block:
    if not isinstance(module, Sequential) or len(module) != 3:
        raise UnsupportedArchitectureError(
            f"trunk block #{index} is not a Sequential(Conv, BatchNorm, ReLU)"
        )
    conv, bn, relu = module[0], module[1], module[2]
    if not isinstance(bn, BatchNorm) or type(relu) is not ReLU:
        raise UnsupportedArchitectureError(
            f"trunk block #{index} is not a Sequential(Conv, BatchNorm, ReLU)"
        )
    if type(conv) is Conv2d:
        kh, kw = conv.kernel_size
        ph, pw = conv.padding
        if conv.stride != (1, 1) or kh != 1 or ph != 0:
            raise UnsupportedArchitectureError(
                f"trunk block #{index}: need stride (1, 1) and a (1, ℓ) kernel "
                f"with no height padding"
            )
        kernel, pad, lifted = kw, pw, False
    elif type(conv) is Conv1d:
        if conv.stride != 1:
            raise UnsupportedArchitectureError(
                f"trunk block #{index}: need time stride 1"
            )
        kernel, pad, lifted = conv.kernel_size, conv.padding, True
    else:
        raise UnsupportedArchitectureError(
            f"trunk block #{index}: unsupported layer {type(conv).__name__}"
        )
    if kernel % 2 != 1 or pad != kernel // 2:
        raise UnsupportedArchitectureError(
            f"trunk block #{index}: need an odd kernel with \"same\" padding "
            f"(got kernel {kernel}, padding {pad})"
        )
    return _Block(conv, bn, pad, lifted)


def _validate_trunk(model) -> List[_Block]:
    trunk = getattr(model, "feature_extractor", None)
    if not isinstance(trunk, Sequential) or len(trunk) == 0:
        raise UnsupportedArchitectureError(
            f"{type(model).__name__} has no Sequential conv trunk"
        )
    return [_validate_block(module, index) for index, module in enumerate(trunk)]


def supports_incremental(model) -> bool:
    """True when :class:`IncrementalTrunk` can evaluate ``model``'s trunk."""
    try:
        _validate_trunk(model)
    except UnsupportedArchitectureError:
        return False
    return True


class IncrementalTrunk:
    """Evaluate a conv trunk over sliding windows, reusing feature maps.

    The caller owns the (fully updated) 4D input array and reports how many
    new columns a slide introduced; this class owns one cached output array
    per block and decides, per layer, which columns shift and which
    recompute.  Peak state is the sum of all feature maps — the same arrays a
    single naive forward materialises transiently.
    """

    def __init__(self, model) -> None:
        self._blocks = _validate_trunk(model)
        self._outputs: List[np.ndarray] = []

    @property
    def has_state(self) -> bool:
        return bool(self._outputs)

    def invalidate(self) -> None:
        """Drop cached feature maps; the next call cold-starts."""
        self._outputs = []

    def reset(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Full forward of ``x`` (``(B, C, H, W)``), caching every block's map.

        Issues the same full-width fused kernels as the Sequential inference
        fast path, so the result is bitwise-identical to a naive forward.
        """
        width = x.shape[-1]
        outputs: List[np.ndarray] = []
        current = x
        for block in self._blocks:
            current = fused_conv_bn_relu(
                current, block.proxy(), block.bn, padding=(0, block.pad)
            )
            outputs.append(current)
        self._outputs = outputs
        return current, (width, 0)

    def slide(self, x: np.ndarray, hop: int) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Update cached maps after ``x`` slid forward by ``hop`` columns.

        ``x`` must already hold the new window.  Returns the final feature
        map and its dirty region ``(a, b)`` — columns ``[0, a) ∪ [b, W)``
        were recomputed, columns ``[a, b)`` are bitwise the previous window's
        columns shifted by ``hop`` (consumers can delta-update downstream
        state the same way).
        """
        width = x.shape[-1]
        if not self._outputs or hop >= width:
            return self.reset(x)
        a, b = 0, width - hop
        current = x
        for index, block in enumerate(self._blocks):
            pad = block.pad
            out = self._outputs[index]
            a_new = min(width, a + pad)
            b_new = max(0, b - pad)
            if a_new >= b_new:
                # Dirty regions met: recompute the whole layer (and, since
                # everything below is now dirty, every layer above it).
                out[...] = fused_conv_bn_relu(
                    current, block.proxy(), block.bn, padding=(0, pad)
                )
                a, b = width, 0
            else:
                out[..., : width - hop] = out[..., hop:]
                if a_new:
                    out[..., :a_new] = self._recompute(current, block, 0, a_new)
                out[..., b_new:] = self._recompute(current, block, b_new, width)
                a, b = a_new, b_new
            current = out
        return current, (a, b)

    @staticmethod
    def _recompute(x: np.ndarray, block: _Block, lo: int, hi: int) -> np.ndarray:
        """Output columns ``[lo, hi)`` of one block, from the updated input.

        Assembles the receptive field ``[lo - pad, hi + pad)`` — an interior
        slice when possible, otherwise a slab with explicit boundary zeros —
        and runs the padding-free fused kernel over it.
        """
        pad = block.pad
        width = x.shape[-1]
        src_lo, src_hi = lo - pad, hi + pad
        if src_lo >= 0 and src_hi <= width:
            slab = x[..., src_lo:src_hi]
        else:
            slab = np.zeros(x.shape[:-1] + (src_hi - src_lo,), dtype=x.dtype)
            clip_lo, clip_hi = max(0, src_lo), min(width, src_hi)
            slab[..., clip_lo - src_lo : clip_hi - src_lo] = x[..., clip_lo:clip_hi]
        return fused_conv_bn_relu(slab, block.proxy(), block.bn, padding=(0, 0))
