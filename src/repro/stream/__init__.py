"""Streaming incremental explanation: classify + explain a live feed.

Push multivariate samples one timestep (or block) at a time into a
:class:`StreamSession`; once the first window fills, every ``hop`` new
samples emit a :class:`StreamResult` with the window's logits and a CAM/dCAM
heatmap.  The ``incremental`` engine reuses ring-buffered windows, rolled
``C(T)`` cubes and shifted conv feature maps so each hop costs O(changed
region); the ``naive`` engine recomputes each window through the offline
pipeline and serves as the pinned parity oracle.  See docs/streaming.md.

Like :mod:`repro.serve` and :mod:`repro.dist`, this package is not imported
eagerly by ``import repro`` — ``import repro.stream`` (or ``from repro.stream
import StreamSession``) explicitly.
"""

from .config import StreamConfig
from .incremental import (
    IncrementalTrunk,
    UnsupportedArchitectureError,
    supports_incremental,
)
from .session import StreamResult, StreamSession

__all__ = [
    "StreamConfig",
    "StreamSession",
    "StreamResult",
    "IncrementalTrunk",
    "UnsupportedArchitectureError",
    "supports_incremental",
]
