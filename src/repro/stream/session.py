"""Streaming classify-and-explain sessions over a live multivariate feed.

:class:`StreamSession` consumes samples one timestep (or block) at a time and
emits one :class:`StreamResult` — logits, predicted class and a CAM/dCAM
heatmap — per window, every ``hop`` samples once the first window has filled.
Two engines share the exact same emission semantics:

* ``engine="naive"`` — the oracle: every window is recomputed from scratch
  through the same code paths the offline pipeline uses
  (:func:`repro.core.compute_dcam` with session-fixed permutations, the
  CAM tensordot over full feature maps);
* ``engine="incremental"`` — the production path: a ring buffer holds the
  raw window, the ``C(T)`` cube stack is rolled column-wise
  (:func:`repro.core.roll_cube_batch`), conv feature maps are shifted and
  only dirty columns recomputed (:class:`~repro.stream.incremental.
  IncrementalTrunk`), and the permutation CAMs / ``M̄`` are delta-updated
  over the same dirty region.  Each hop costs O(changed region) instead of
  O(window).

Parity: a cold start (first window, post-swap, post-cache-hit) is
bitwise-identical to the naive engine per feature map; steady-state hops
agree to ≤ 1e-10 at float64 (einsum/BLAS accumulation is layout-sensitive,
so shifted columns can differ from full-width recomputation in the last
ulps).  The float32 tier inherits the documented ~1e-5 inference tolerance.
``tests/test_stream.py`` pins both; ``benchmarks/bench_stream_window.py``
asserts parity before timing a single hop.

Caching: pass a :class:`repro.serve.ExplanationCache` and every emission is
keyed by :func:`repro.serve.cache.stream_window_key` — the serving model-state
hash plus the exact window bytes — so replayed streams and fleets of hosts
watching one feed share warm results.  A cache hit skips computation, which
leaves incremental state behind the stream; the session tracks the lag and
the next miss either slides by the accumulated gap or cold-starts.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.dcam import _stack_orders, compute_dcam, extract_dcam, permutation_rows
from ..core.input_transform import build_cube_batch, random_permutations, roll_cube_batch
from ..nn import inference_mode
from ..obs.tracing import span
from ..serve.cache import stream_window_key
from .config import StreamConfig
from .incremental import IncrementalTrunk, UnsupportedArchitectureError, supports_incremental

__all__ = ["StreamResult", "StreamSession"]

#: Explanation families the streaming layer knows how to emit.
_SUPPORTED_FAMILIES = ("cam", "dcam")


@dataclass
class StreamResult:
    """One emitted window: classification plus (optionally) an explanation.

    Attributes
    ----------
    index:
        Emission counter, 0-based.
    t_start, t_end:
        The window's position in the stream: samples ``[t_start, t_end)``
        of everything pushed so far.
    logits:
        Raw classifier scores for the window, shape ``(n_classes,)``.
    predicted:
        ``argmax`` of ``logits``.
    class_id:
        The class the heatmap explains (``predicted`` unless
        ``StreamConfig.explain_class`` pinned one); ``None`` when the session
        classifies only.
    heatmap:
        The explanation — ``(D, n)`` for dCAM and the c-variants' CAM,
        ``(n,)`` for the univariate CNN CAM; ``None`` when classifying only.
    success_ratio:
        dCAM's label-free quality proxy ``n_g / k``; ``None`` for CAM.
    engine:
        Which engine produced the emission (after any fallback).
    cached:
        True when the emission was answered from the explanation cache.
    """

    index: int
    t_start: int
    t_end: int
    logits: np.ndarray
    predicted: int
    class_id: Optional[int]
    heatmap: Optional[np.ndarray]
    success_ratio: Optional[float]
    engine: str
    cached: bool = False


class _RingWindow:
    """Fixed-capacity ring over the last ``capacity`` stream columns."""

    def __init__(self, n_dimensions: int, capacity: int) -> None:
        self._buf = np.empty((n_dimensions, capacity), dtype=np.float64)
        self._pos = 0  # next write column
        self._count = 0
        self.capacity = capacity

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    def push(self, block: np.ndarray) -> None:
        """Append ``(D, m)`` columns, overwriting the oldest on wrap."""
        m = block.shape[1]
        if m >= self.capacity:
            self._buf[...] = block[:, -self.capacity :]
            self._pos = 0
            self._count = self.capacity
            return
        first = min(m, self.capacity - self._pos)
        self._buf[:, self._pos : self._pos + first] = block[:, :first]
        if m > first:
            self._buf[:, : m - first] = block[:, first:]
        self._pos = (self._pos + m) % self.capacity
        self._count = min(self.capacity, self._count + m)

    def window(self) -> np.ndarray:
        """The full window, oldest column first (contiguous copy)."""
        if not self.full:
            raise RuntimeError("ring window is not full yet")
        if self._pos == 0:
            return self._buf.copy()
        return np.concatenate(
            (self._buf[:, self._pos :], self._buf[:, : self._pos]), axis=1
        )

    def tail(self, m: int) -> np.ndarray:
        """The newest ``m`` columns (contiguous copy)."""
        if m > self._count:
            raise ValueError(f"only {self._count} columns buffered, asked for {m}")
        lo = (self._pos - m) % self.capacity
        if lo + m <= self.capacity:
            return self._buf[:, lo : lo + m].copy()
        return np.concatenate((self._buf[:, lo:], self._buf[:, : self._pos]), axis=1)


class StreamSession:
    """Push samples, get per-window classifications and explanations.

    Parameters
    ----------
    model:
        A trained classifier.  dCAM streaming needs a d-architecture
        (``explainer_family == "dcam"``); the plain/c-variants stream CAM.
    config:
        A :class:`~repro.stream.StreamConfig` (defaults throughout when
        omitted).
    cache:
        Optional :class:`repro.serve.ExplanationCache`; emissions are stored
        under window-state-qualified keys and replays hit.
    state_hash:
        Optional precomputed model-state hash for the cache keys (e.g. the
        artifact store's); derived from the weights when omitted.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` registry; each emission
        records its compute latency into the ``stream_hop`` timer/histogram
        (cache hits excluded — they measure the cache, not the engine).
        Omitted: only the session's own ``stats`` counters are kept.
    """

    def __init__(self, model, config: Optional[StreamConfig] = None, *,
                 cache=None, state_hash: Optional[str] = None,
                 telemetry=None) -> None:
        self.config = config if config is not None else StreamConfig()
        self.config.validate()
        self.telemetry = telemetry
        window = self.config.window if self.config.window is not None else model.length
        if window != model.length:
            raise ValueError(
                f"window ({window}) must equal the model's trained input length "
                f"({model.length}); the architectures are fixed-length"
            )
        self.window = int(window)
        self.cache = cache
        self._ring = _RingWindow(model.n_dimensions, self.window)
        self._total = 0  # samples consumed so far
        self._next_emission = self.window
        self._emitted = 0
        #: Counters exposed for tests/telemetry: emissions, cache hits, cold
        #: starts vs incremental hops, and full CAM-stack rebuilds (class
        #: changes).
        self.stats: Dict[str, int] = {
            "emissions": 0,
            "cache_hits": 0,
            "cold_starts": 0,
            "incremental_hops": 0,
            "cam_rebuilds": 0,
        }
        # dCAM permutations are drawn once per session and shared by every
        # window (and both engines), so incremental per-permutation state
        # stays valid across hops.  The identity permutation comes first;
        # its row doubles as the window's own classification.
        rng = np.random.default_rng(self.config.seed)
        self._orders = _stack_orders(
            random_permutations(model.n_dimensions, self.config.k, rng),
            model.n_dimensions,
        )
        self._rows = permutation_rows(self._orders)
        self._install_model(model, state_hash)

    # ------------------------------------------------------------------
    # Model installation / mid-stream swap
    # ------------------------------------------------------------------
    def _install_model(self, model, state_hash: Optional[str]) -> None:
        if model.n_dimensions != self._ring._buf.shape[0]:
            raise ValueError(
                f"model expects {model.n_dimensions} dimensions, stream has "
                f"{self._ring._buf.shape[0]}"
            )
        if model.length != self.window:
            raise ValueError(
                f"model expects length {model.length}, session window is {self.window}"
            )
        if self.config.explain == "none":
            family = None
        else:
            family = getattr(model, "explainer_family", None)
            if family not in _SUPPORTED_FAMILIES:
                raise ValueError(
                    f"streaming explains the {_SUPPORTED_FAMILIES} families; "
                    f"{type(model).__name__} declares {family!r} — use "
                    f"StreamConfig(explain='none') to classify only"
                )
        model.eval()
        self.model = model
        self.family = family
        self._state_hash: Optional[str] = state_hash
        self.engine = self.config.engine
        self._trunk: Optional[IncrementalTrunk] = None
        if self.engine == "incremental":
            if supports_incremental(model):
                self._trunk = IncrementalTrunk(model)
            elif self.config.on_unsupported == "error":
                # Re-raise the specific reason.
                from .incremental import _validate_trunk

                _validate_trunk(model)
            else:
                self.engine = "naive"
        self._invalidate_state()

    def set_model(self, model, state_hash: Optional[str] = None) -> None:
        """Swap the served model mid-stream.

        The ring buffer and emission schedule carry over; all incremental
        state is invalidated, so the next emission cold-starts against the
        new weights.  The new model must share the stream's dimension count
        and window length.
        """
        self._install_model(model, state_hash)

    def _invalidate_state(self) -> None:
        self._state_total: Optional[int] = None  # self._total at last compute
        self._inputs: Optional[np.ndarray] = None
        self._cams: Optional[np.ndarray] = None
        self._m_bar: Optional[np.ndarray] = None
        self._cam: Optional[np.ndarray] = None
        self._last_class: Optional[int] = None
        if self._trunk is not None:
            self._trunk.invalidate()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def push(self, samples) -> List[StreamResult]:
        """Consume new samples; return the windows they completed (often []).

        ``samples`` is one timestep ``(D,)`` or a block ``(D, m)``.  A block
        crossing several emission points yields several results, identical
        to pushing one timestep at a time.
        """
        block = np.asarray(samples, dtype=np.float64)
        if block.ndim == 1:
            block = block[:, None]
        if block.ndim != 2 or block.shape[0] != self._ring._buf.shape[0]:
            raise ValueError(
                f"samples must be (D,) or (D, m) with D={self._ring._buf.shape[0]}, "
                f"got shape {np.asarray(samples).shape}"
            )
        results: List[StreamResult] = []
        offset, m = 0, block.shape[1]
        while offset < m:
            take = min(self._next_emission - self._total, m - offset)
            self._ring.push(block[:, offset : offset + take])
            self._total += take
            offset += take
            if self._total == self._next_emission:
                results.append(self._emit())
                self._next_emission += self.config.hop
        return results

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _qualified_hash(self) -> str:
        if self._state_hash is None:
            from ..nn.serialization import state_hash

            self._state_hash = state_hash(self.model)
        if self.model.compute_dtype == np.float32:
            return f"{self._state_hash}:float32"
        return self._state_hash

    def _emit(self) -> StreamResult:
        self.stats["emissions"] += 1
        index, t_end = self._emitted, self._total
        self._emitted += 1
        key = None
        if self.cache is not None:
            window = self._ring.window()
            key = stream_window_key(
                self._qualified_hash(), window, self.family or "none",
                self.config.explain_class,
                self.config.k if self.family == "dcam" else None,
                self.config.seed if self.family == "dcam" else None,
            )
            blob = self.cache.get(key)
            if blob is not None:
                self.stats["cache_hits"] += 1
                payload = pickle.loads(blob)
                return self._result(index, t_end, payload, cached=True)
        started = time.perf_counter()
        with span("stream.hop", index=index, engine=self.engine):
            if self.engine == "incremental":
                payload = self._compute_incremental()
            else:
                payload = self._compute_naive()
        if self.telemetry is not None:
            self.telemetry.timer("stream_hop").add(time.perf_counter() - started)
        if key is not None:
            self.cache.put(key, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        return self._result(index, t_end, payload, cached=False)

    def _result(self, index: int, t_end: int, payload: dict, cached: bool) -> StreamResult:
        return StreamResult(
            index=index,
            t_start=t_end - self.window,
            t_end=t_end,
            logits=payload["logits"],
            predicted=payload["predicted"],
            class_id=payload["class_id"],
            heatmap=payload["heatmap"],
            success_ratio=payload["success_ratio"],
            engine=self.engine,
            cached=cached,
        )

    def _explained_class(self, predicted: int) -> int:
        if self.config.explain_class is not None:
            return int(self.config.explain_class)
        return int(predicted)

    # ------------------------------------------------------------------
    # Naive engine (the oracle)
    # ------------------------------------------------------------------
    def _compute_naive(self) -> dict:
        window = self._ring.window()
        model = self.model
        with inference_mode():
            prepared = model.prepare_input(window[None])
            if self.family is None or self.family == "dcam":
                logits = model.forward(prepared).data[0]
                features = None
            else:
                features = model.features(prepared)
                logits = model.classifier(model.gap(features)).data[0]
        predicted = int(logits.argmax())
        if self.family is None:
            return {"logits": logits, "predicted": predicted, "class_id": None,
                    "heatmap": None, "success_ratio": None}
        class_id = self._explained_class(predicted)
        if self.family == "cam":
            heatmap = np.tensordot(
                model.class_weights[class_id], features.data[0], axes=(0, 0)
            )
            return {"logits": logits, "predicted": predicted, "class_id": class_id,
                    "heatmap": heatmap, "success_ratio": None}
        result = compute_dcam(
            model, window, class_id,
            permutations=self._orders,
            use_only_correct=False,
            batch_size=self.config.batch_size,
        )
        return {"logits": logits, "predicted": predicted, "class_id": class_id,
                "heatmap": result.dcam, "success_ratio": result.success_ratio}

    # ------------------------------------------------------------------
    # Incremental engine
    # ------------------------------------------------------------------
    def _prepared_inputs(self, window: np.ndarray) -> np.ndarray:
        """The model-ready 4D input batch for the current window."""
        dtype = self.model.compute_dtype
        kind = getattr(self.model, "input_kind", "raw")
        if self.family == "dcam":
            permuted = window[self._orders].astype(dtype)
            return build_cube_batch(permuted)  # (k, D, D, W)
        if kind == "channel":
            return window.astype(dtype)[None, None, :, :]  # (1, 1, D, W)
        return window.astype(dtype)[None, :, None, :]  # (1, D, 1, W) lifted 1D

    def _slide_inputs(self, tail: np.ndarray) -> None:
        """Roll the owned input batch forward by ``tail.shape[-1]`` columns."""
        dtype = self.model.compute_dtype
        s = tail.shape[-1]
        if self.family == "dcam":
            roll_cube_batch(self._inputs, tail[self._orders].astype(dtype))
            return
        kind = getattr(self.model, "input_kind", "raw")
        block = tail.astype(dtype)
        lifted = block[None, None, :, :] if kind == "channel" else block[None, :, None, :]
        self._inputs[..., :-s] = self._inputs[..., s:]
        self._inputs[..., -s:] = lifted

    def _compute_incremental(self) -> dict:
        width = self.window
        stale_by = None if self._state_total is None else self._total - self._state_total
        if stale_by is None or stale_by >= width or self._inputs is None:
            self.stats["cold_starts"] += 1
            slide = 0  # a >= b below: the CAM/M̄ caches rebuild, never shift
            self._inputs = self._prepared_inputs(self._ring.window())
            features, (a, b) = self._trunk.reset(self._inputs)
        else:
            # Cache hits leave state behind, so the gap can be any multiple
            # of hop: everything downstream must shift by the same amount.
            self.stats["incremental_hops"] += 1
            slide = stale_by
            self._slide_inputs(self._ring.tail(stale_by))
            features, (a, b) = self._trunk.slide(self._inputs, stale_by)
        self._state_total = self._total

        # Head: the same GAP + dense arithmetic the Tensor path runs.
        model = self.model
        pooled = features.mean(axis=(2, 3))  # (B, F)
        logits_all = pooled @ model.classifier.weight.data.T + model.classifier.bias.data
        logits = logits_all[0]  # identity permutation == the window itself
        predicted = int(logits.argmax())
        if self.family is None:
            return {"logits": logits, "predicted": predicted, "class_id": None,
                    "heatmap": None, "success_ratio": None}
        class_id = self._explained_class(predicted)
        if self.family == "cam":
            heatmap = self._update_cam(features, class_id, a, b, slide)
            return {"logits": logits, "predicted": predicted, "class_id": class_id,
                    "heatmap": heatmap.copy(), "success_ratio": None}
        dcam = self._update_dcam(features, class_id, a, b, slide)
        predicted_all = logits_all.argmax(axis=1)
        n_correct = int((predicted_all == class_id).sum())
        return {"logits": logits, "predicted": predicted, "class_id": class_id,
                "heatmap": dcam, "success_ratio": n_correct / len(self._orders)}

    def _update_cam(
        self, features: np.ndarray, class_id: int, a: int, b: int, slide: int
    ) -> np.ndarray:
        """Maintain the CAM heatmap, delta-updating when the class held.

        ``slide`` is how far the trunk actually shifted this emission — the
        accumulated gap after cache hits, not necessarily ``config.hop``.
        """
        weights = self.model.class_weights[class_id]
        feats = features[0]
        if feats.shape[-2] == 1 and getattr(self.model, "input_kind", "raw") == "raw":
            feats = feats[:, 0, :]  # un-lift the 1D trunk: (F, W)
        width = feats.shape[-1]
        rebuild = (
            self._cam is None or a >= b or class_id != self._last_class
        )
        if rebuild:
            if self._cam is not None and class_id != self._last_class:
                self.stats["cam_rebuilds"] += 1
            self._cam = np.tensordot(weights, feats, axes=(0, 0))
        else:
            self._cam[..., : width - slide] = self._cam[..., slide:]
            for lo, hi in ((0, a), (b, width)):
                if lo < hi:
                    self._cam[..., lo:hi] = np.tensordot(
                        weights, feats[..., lo:hi], axes=(0, 0)
                    )
        self._last_class = class_id
        return self._cam

    def _update_dcam(
        self, features: np.ndarray, class_id: int, a: int, b: int, slide: int
    ) -> np.ndarray:
        """Maintain the permutation CAM stack and ``M̄``, then extract dCAM.

        CAMs depend on the explained class, so a class flip forces a full
        CAM/``M̄`` rebuild from the (still incremental) feature maps; while
        the class holds, only the dirty columns ``[0, a) ∪ [b, W)`` are
        re-gathered.  ``slide`` is the trunk's actual shift this emission
        (the accumulated gap after cache hits, not necessarily
        ``config.hop``).  The ``(k, D, D, dirty)`` merge scratch is small at
        streaming scale, so no chunking (cf. ``_merge_cam_stack``).
        """
        k, n_dimensions = self._orders.shape
        width = self.window
        weights = np.broadcast_to(
            self.model.class_weights[class_id], (k, features.shape[1])
        )
        gather = np.arange(k)[:, None, None]
        if self._cams is None or a >= b or class_id != self._last_class:
            if self._cams is not None and class_id != self._last_class:
                self.stats["cam_rebuilds"] += 1
            if self._cams is None:
                self._cams = np.empty((k, n_dimensions, width))
                self._m_bar = np.empty((n_dimensions, n_dimensions, width))
            self._cams[...] = np.einsum("bf,bfdn->bdn", weights, features)
            self._m_bar[...] = self._cams[gather, self._rows].sum(axis=0) / k
        else:
            self._cams[..., : width - slide] = self._cams[..., slide:]
            self._m_bar[..., : width - slide] = self._m_bar[..., slide:]
            for lo, hi in ((0, a), (b, width)):
                if lo < hi:
                    self._cams[..., lo:hi] = np.einsum(
                        "bf,bfdn->bdn", weights, features[..., lo:hi]
                    )
                    self._m_bar[..., lo:hi] = (
                        self._cams[..., lo:hi][gather, self._rows].sum(axis=0) / k
                    )
        self._last_class = class_id
        dcam, _averaged = extract_dcam(self._m_bar)
        return dcam
