"""Configuration of one streaming session (:class:`repro.stream.StreamSession`).

Every field carries a ``#:`` doc comment; ``scripts/gen_config_docs.py``
renders them into ``docs/config.md`` and CI fails on drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Engine names accepted by :attr:`StreamConfig.engine`.
ENGINES = ("incremental", "naive")

#: Explanation modes accepted by :attr:`StreamConfig.explain`.
EXPLAIN_MODES = ("auto", "none")

#: Policies accepted by :attr:`StreamConfig.on_unsupported`.
UNSUPPORTED_POLICIES = ("fallback", "error")


@dataclass
class StreamConfig:
    """Knobs of one :class:`~repro.stream.StreamSession`."""

    #: Window length in timesteps.  ``None`` (the default) uses the model's
    #: trained input length — the only valid value for the fixed-length
    #: architectures, so set it explicitly only for clarity; a mismatch
    #: raises at session construction.
    window: Optional[int] = None
    #: Emit one classification (+ explanation) every ``hop`` new samples once
    #: the first window has filled.  ``hop=1`` explains every slide; larger
    #: hops trade explanation density for throughput.  A hop at or above the
    #: window length makes consecutive windows disjoint, so the incremental
    #: engine degenerates to per-window recomputation.
    hop: int = 1
    #: ``"incremental"`` carries ring-buffer / C(T)-cube / conv-feature state
    #: across hops so each emission costs O(changed region); ``"naive"``
    #: recomputes every window from scratch and is the parity oracle the
    #: incremental path is pinned against (see docs/streaming.md).
    engine: str = "incremental"
    #: What each window emits: ``"auto"`` explains with the model's declared
    #: ``explainer_family`` (dCAM for d-architectures, CAM for the plain and
    #: c-variants), ``"none"`` classifies only.
    explain: str = "auto"
    #: Number of random dimension permutations per dCAM explanation.
    #: Ignored by the CAM families.
    k: int = 20
    #: Seed of the dCAM permutation draw.  Permutations are drawn **once per
    #: session** and reused for every window — that is what lets hops share
    #: per-permutation feature state — so two sessions with equal seeds see
    #: equal permutations.
    seed: int = 0
    #: Class to explain.  ``None`` explains each window's predicted class
    #: (re-deriving it per window as the stream drifts).
    explain_class: Optional[int] = None
    #: Micro-batch width of the naive engine's dCAM forward passes — the
    #: peak-memory knob of :func:`repro.core.compute_dcam`.  The incremental
    #: engine keeps all ``k`` permutations resident and ignores it.
    batch_size: int = 32
    #: Policy when the incremental engine cannot handle the architecture
    #: (only the CNN family's stride-1 Conv→BN→ReLU trunks qualify):
    #: ``"fallback"`` silently runs the naive engine, ``"error"`` raises
    #: :class:`~repro.stream.UnsupportedArchitectureError`.
    on_unsupported: str = "fallback"

    def validate(self) -> None:
        """Raise :class:`ValueError` on out-of-range fields (shape checks
        against a concrete model happen in the session constructor)."""
        if self.window is not None and self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.hop < 1:
            raise ValueError(f"hop must be >= 1, got {self.hop}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.explain not in EXPLAIN_MODES:
            raise ValueError(
                f"explain must be one of {EXPLAIN_MODES}, got {self.explain!r}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.on_unsupported not in UNSUPPORTED_POLICIES:
            raise ValueError(
                f"on_unsupported must be one of {UNSUPPORTED_POLICIES}, "
                f"got {self.on_unsupported!r}"
            )
